// Package blobdb is the appliance's database, standing in for the MySQL
// instance of the paper: "A database stores the uploaded executables"
// (§V). It is a table-oriented blob store. Records hold a metadata map
// plus a gzip-compressed blob — compression is load-bearing for the
// reproduction, because Fig. 6 attributes a CPU peak to "loading and
// decompressing the file from the database".
//
// Durability follows the classic WAL + snapshot recipe: every mutation is
// appended to a write-ahead log before it is applied, Compact folds the
// state into a snapshot and truncates the log, and Open replays snapshot
// then log. Opening with an empty directory yields a purely in-memory
// store.
//
// The stock layout is one wal.log + snapshot.db, byte-identical to the
// original engine. Options.WALShards >= 2 selects the scaled engine:
// keys hash to N shards, each with its own lock, its own segmented WAL
// (wal-<shard>-<seg>.log rolled at SegmentBytes) and — with GroupCommit —
// its own batcher; Options.AutoCompact adds a background compactor that
// retires sealed segments incrementally instead of Compact's
// stop-the-world snapshot. Opening an existing directory with a
// different shard count migrates the layout in place.
package blobdb

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// File names inside the database directory. The stock single-shard
// layout uses walName/snapshotName; sharded layouts are declared by
// manifestName and use wal-<shard>-<seg>.log / snapshot-<shard>.db.
const (
	walName      = "wal.log"
	snapshotName = "snapshot.db"
	manifestName = "wal-manifest.json"
)

// MaxBlobBytes bounds one stored blob.
const MaxBlobBytes = 256 << 20

// DefaultSegmentBytes is the live-segment roll threshold when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 16 << 20

// DefaultCompactEvery is the background compactor's scan cadence when
// Options.CompactEvery is zero.
const DefaultCompactEvery = time.Second

// opFloor marks a sharded snapshot's coverage: segments with an index
// below the recorded floor are superseded by the snapshot and skipped
// (and removed) at replay, which is what makes segment retirement
// crash-safe in any unlink order. Stock files never carry it; old
// readers ignored unknown ops, so the format stays forward-compatible.
const opFloor = "floor"

// Errors.
var (
	ErrNotFound  = errors.New("blobdb: no such record")
	ErrTooLarge  = errors.New("blobdb: blob exceeds size limit")
	ErrClosed    = errors.New("blobdb: database closed")
	ErrCorrupt   = errors.New("blobdb: corrupt log or snapshot")
	ErrBadrecord = errors.New("blobdb: record needs a key")
)

// Record is a stored row, returned with the blob decompressed.
type Record struct {
	Key            string
	Meta           map[string]string
	Blob           []byte
	StoredAt       time.Time
	CompressedSize int
}

// row is the in-memory representation (blob kept compressed).
type row struct {
	meta     map[string]string
	comp     []byte // gzip-compressed blob
	rawSize  int
	storedAt time.Time
	// gen is the row's generation, bumped on every put; the decompressed-
	// blob cache keys on it so stale inflations never serve. Generations
	// are per shard — a key always hashes to the same shard, so they stay
	// monotonic per key.
	gen uint64
	// seg is the WAL segment holding the row's latest put (-1 when the
	// row came from a snapshot); superseding the row decrements that
	// segment's live count so the compactor can retire fully-dead
	// segments without rewriting anything.
	seg int
}

// walEntry is one log record.
type walEntry struct {
	Op       string            `json:"op"` // "put" | "delete" | "floor"
	Table    string            `json:"table"`
	Key      string            `json:"key"`
	Meta     map[string]string `json:"meta,omitempty"`
	Comp     []byte            `json:"comp,omitempty"` // gzip bytes (JSON base64)
	RawSize  int               `json:"raw_size,omitempty"`
	StoredAt time.Time         `json:"stored_at,omitempty"`
}

// DB is the database handle. All methods are safe for concurrent use.
type DB struct {
	dir    string
	clock  vtime.Clock
	probe  *metrics.Probe
	cost   metrics.Cost
	tracer *trace.Tracer

	// sharded is true when the directory uses the manifest-declared
	// multi-WAL layout; stock databases run on shards[0] alone with the
	// legacy file names.
	sharded  bool
	segLimit int64
	shards   []*shard

	cache *blobCache // decompressed-blob LRU; nil when disabled
	comp  *compactor // background compactor; nil when disabled

	closeMu sync.Mutex
	closed  bool
}

// Options configures Open.
type Options struct {
	// Dir is the storage directory; empty means in-memory only.
	Dir string
	// Clock timestamps records; nil means real time.
	Clock vtime.Clock
	// Probe accounts CPU (compress/decompress) and disk traffic; may be nil.
	Probe *metrics.Probe
	// Cost supplies the compression CPU rates; zero rates disable burning.
	Cost metrics.Cost
	// BlobCacheBytes bounds a decompressed-blob LRU in front of Get;
	// repeat reads of an unchanged record skip the disk read and gzip
	// inflate (and their modelled costs). Zero disables the cache — the
	// paper-faithful behaviour, where every load decompresses.
	BlobCacheBytes int64
	// GroupCommit batches concurrent WAL appends into one write with a
	// single fsync (append-before-apply preserved). Off by default: the
	// stock path performs one unsynced write per mutation, as the paper's
	// MySQL stand-in did. Only effective for persistent databases. With
	// WALShards >= 2 each shard runs its own committer, so batches on
	// different shards flush in parallel.
	GroupCommit bool
	// WALShards splits the keyspace across N independent WALs: keys hash
	// to a shard, and each shard has its own lock and its own segmented
	// log, so concurrent puts to different shards never contend. 0 or 1
	// keeps the stock single-WAL layout, byte-identical on disk. Opening
	// an existing directory with a different shard count migrates the
	// layout in place (both directions, any count change).
	WALShards int
	// SegmentBytes rolls a shard's live WAL segment once it grows past
	// this size; sealed segments are the unit the compactor retires.
	// Zero means DefaultSegmentBytes. Sharded layouts only.
	SegmentBytes int64
	// AutoCompact runs a background compactor that incrementally retires
	// sealed segments whose entries are all superseded and snapshots one
	// shard per scan when its sealed garbage passes 50%, replacing
	// stop-the-world Compact calls with rate-limited work under live
	// traffic. Sharded persistent databases only.
	AutoCompact bool
	// CompactEvery is the background compactor's scan cadence (real
	// time, not the virtual clock); zero means DefaultCompactEvery.
	CompactEvery time.Duration
	// Tracer records db.replay spans at Open and db.compact spans per
	// compaction; nil records nothing.
	Tracer *trace.Tracer
}

// Open opens (creating or recovering) a database.
func Open(opts Options) (*DB, error) {
	clock := opts.Clock
	if clock == nil {
		clock = vtime.Real{}
	}
	n := opts.WALShards
	if n < 2 {
		n = 1
	}
	segLimit := opts.SegmentBytes
	if segLimit <= 0 {
		segLimit = DefaultSegmentBytes
	}
	db := &DB{
		dir:      opts.Dir,
		clock:    clock,
		probe:    opts.Probe,
		cost:     opts.Cost,
		tracer:   opts.Tracer,
		sharded:  n > 1,
		segLimit: segLimit,
	}
	db.shards = make([]*shard, n)
	for i := range db.shards {
		db.shards[i] = &shard{db: db, idx: i, tables: make(map[string]map[string]*row)}
	}
	if opts.BlobCacheBytes > 0 {
		db.cache = newBlobCache(opts.BlobCacheBytes)
	}
	if opts.Dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("blobdb: create dir: %w", err)
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	if opts.GroupCommit {
		for _, s := range db.shards {
			s.gc = startGroupCommitter(s)
		}
	}
	if opts.AutoCompact && db.sharded {
		every := opts.CompactEvery
		if every <= 0 {
			every = DefaultCompactEvery
		}
		db.comp = startCompactor(db, every)
	}
	return db, nil
}

// Table returns a handle for the named table (created on first write).
func (db *DB) Table(name string) *Table { return &Table{db: db, name: name} }

// TableNames lists tables with at least one row, sorted.
func (db *DB) TableNames() []string {
	seen := map[string]bool{}
	for _, s := range db.shards {
		s.mu.RLock()
		for name, rows := range s.tables {
			if len(rows) > 0 {
				seen[name] = true
			}
		}
		s.mu.RUnlock()
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close stops the compactor, flushes the group committers, and closes
// every WAL. The first error encountered is returned and the database is
// left poisoned either way: further use returns ErrClosed, and a second
// Close returns nil.
func (db *DB) Close() error {
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.comp != nil {
		db.comp.halt() // waits for any in-flight sweep
	}
	for _, s := range db.shards {
		if s.gc != nil {
			s.gc.shutdown() // flushes everything queued before the WAL closes
		}
	}
	var first error
	for _, s := range db.shards {
		s.mu.Lock()
		s.closed = true
		if s.wal != nil {
			if err := s.wal.Sync(); err != nil && first == nil {
				first = err
			}
			if err := s.wal.Close(); err != nil && first == nil {
				first = err
			}
			s.wal = nil
		}
		s.mu.Unlock()
	}
	return first
}

// Compact folds current state into snapshots and truncates the logs.
// Stock layout: one snapshot written to a temp file and renamed (with a
// directory fsync so the rename survives a crash), then the WAL is
// truncated — all under the database lock, stopping the world. Sharded
// layout: each shard is compacted in turn with only the seal and the
// state copy under that shard's lock, so the other shards keep serving.
func (db *DB) Compact() error {
	if db.sharded {
		for _, s := range db.shards {
			if _, err := s.compactSnapshot(); err != nil {
				return err
			}
		}
		return nil
	}
	s := db.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if db.dir == "" {
		return nil
	}
	sp := db.tracer.StartRoot("db.compact")
	sp.Set("layout", "stock")
	err := db.compactStockLocked(s)
	if err != nil {
		sp.Error(err.Error())
	}
	sp.End()
	return err
}

// compactStockLocked is the legacy stop-the-world compaction; the caller
// holds shard 0's write lock.
func (db *DB) compactStockLocked(s *shard) error {
	tmp, err := os.CreateTemp(db.dir, "snaptmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	for table, rows := range s.tables {
		for key, r := range rows {
			e := &walEntry{Op: "put", Table: table, Key: key, Meta: r.meta,
				Comp: r.comp, RawSize: r.rawSize, StoredAt: r.storedAt}
			if err := writeEntry(tmp, e); err != nil {
				tmp.Close()
				return err
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(db.dir, snapshotName)); err != nil {
		return err
	}
	// The rename is only durable once the directory entry is: without
	// this fsync a crash here could roll back to a snapshot that the
	// about-to-be-truncated WAL no longer covers.
	if err := fsyncDir(db.dir); err != nil {
		return err
	}
	// Truncate the WAL now that the snapshot covers everything.
	if s.wal != nil {
		s.wal.Close()
	}
	wal, err := os.OpenFile(filepath.Join(db.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	s.wal = newWALFile(wal)
	s.segBytes = 0
	return nil
}

// Table is a handle on one table.
type Table struct {
	db   *DB
	name string
}

// Put stores (or replaces) a record. The blob is gzip-compressed; the
// compression CPU and the WAL disk write are accounted to the probe.
func (t *Table) Put(key string, meta map[string]string, blob []byte) error {
	if key == "" {
		return ErrBadrecord
	}
	if len(blob) > MaxBlobBytes {
		return ErrTooLarge
	}
	db := t.db
	// Compress outside the lock: CPU-bound.
	db.probe.BurnFor(len(blob), db.cost.CompressBps)
	var cbuf bytes.Buffer
	// BestSpeed: the compression *cost model* lives in the probe burn
	// above; the real gzip pass only needs to shrink the stored bytes,
	// and keeping it cheap avoids polluting time-dilated experiment runs
	// with real CPU time.
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(&cbuf)
	if _, err := zw.Write(blob); err != nil {
		gzipWriterPool.Put(zw)
		return err
	}
	if err := zw.Close(); err != nil {
		gzipWriterPool.Put(zw)
		return err
	}
	gzipWriterPool.Put(zw)
	metaCopy := make(map[string]string, len(meta))
	for k, v := range meta {
		metaCopy[k] = v
	}
	entry := &walEntry{
		Op: "put", Table: t.name, Key: key, Meta: metaCopy,
		Comp: cbuf.Bytes(), RawSize: len(blob), StoredAt: db.clock.Now(),
	}
	s := db.shardFor(t.name, key)
	if s.gc != nil {
		return s.gc.commit(entry)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.log(entry); err != nil {
		return err
	}
	s.apply(entry, s.seg)
	return nil
}

// Get returns the record with the blob decompressed. The disk read of the
// compressed bytes and the decompression CPU are accounted.
func (t *Table) Get(key string) (*Record, error) {
	db := t.db
	s := db.shardFor(t.name, key)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	r, ok := s.tables[t.name][key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
	}
	meta := make(map[string]string, len(r.meta))
	for k, v := range r.meta {
		meta[k] = v
	}
	cacheKey := t.name + "\x00" + key
	if db.cache != nil {
		if blob, ok := db.cache.get(cacheKey, r.gen); ok {
			// Hit: no disk read, no inflate, no modelled cost — the repeat-
			// invocation CPU peak the cache exists to remove.
			return &Record{
				Key: key, Meta: meta, Blob: blob,
				StoredAt: r.storedAt, CompressedSize: len(r.comp),
			}, nil
		}
	}
	db.probe.DiskRead(len(r.comp))
	db.probe.BurnFor(r.rawSize, db.cost.DecompressBps)
	zr, err := pooledGzipReader(bytes.NewReader(r.comp))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out := bytes.NewBuffer(make([]byte, 0, r.rawSize))
	_, err = io.Copy(out, io.LimitReader(zr, MaxBlobBytes+1))
	gzipReaderPool.Put(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	blob := out.Bytes()
	if db.cache != nil {
		db.cache.put(cacheKey, r.gen, blob)
	}
	return &Record{
		Key: key, Meta: meta, Blob: blob,
		StoredAt: r.storedAt, CompressedSize: len(r.comp),
	}, nil
}

// GetCompressed returns a copy of the record's stored gzip bytes and the
// decompressed size, without inflating. Only the disk read of the
// compressed bytes is accounted — this is the cheap path the
// wire-compression staging mode uses to ship the stored stream as-is.
func (t *Table) GetCompressed(key string) (comp []byte, rawSize int, err error) {
	s := t.db.shardFor(t.name, key)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	r, ok := s.tables[t.name][key]
	s.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
	}
	t.db.probe.DiskRead(len(r.comp))
	comp = make([]byte, len(r.comp))
	copy(comp, r.comp)
	return comp, r.rawSize, nil
}

// BlobCacheStats reports the decompressed-blob LRU's counters; all zero
// when the cache is disabled.
func (db *DB) BlobCacheStats() (hits, misses, bytes int64) {
	if db.cache == nil {
		return 0, 0, 0
	}
	return db.cache.stats()
}

// WALStats reports WAL write and fsync call counts, summed across
// shards. With group commit enabled, writes stay below the mutation
// count under concurrency.
func (db *DB) WALStats() (writes, syncs int64) {
	for _, s := range db.shards {
		s.mu.RLock()
		writes += s.walWrites
		syncs += s.walSyncs
		s.mu.RUnlock()
	}
	return writes, syncs
}

// ShardStats is one shard's storage counters.
type ShardStats struct {
	Shard       int   `json:"shard"`
	Segments    int   `json:"segments"`
	Bytes       int64 `json:"bytes"`
	LiveEntries int64 `json:"live_entries"`
	DeadEntries int64 `json:"dead_entries"`
	WALWrites   int64 `json:"wal_writes"`
	WALSyncs    int64 `json:"wal_syncs"`
}

// Stats is the storage engine's monitoring surface.
type Stats struct {
	Shards    int            `json:"shards"`
	Sharded   bool           `json:"sharded"`
	WALWrites int64          `json:"wal_writes"`
	WALSyncs  int64          `json:"wal_syncs"`
	Segments  int            `json:"segments"`
	Bytes     int64          `json:"bytes"`
	PerShard  []ShardStats   `json:"per_shard,omitempty"`
	Compactor CompactorStats `json:"compactor"`
}

// Stats reports per-shard WAL/segment counters and the background
// compactor's totals.
func (db *DB) Stats() Stats {
	st := Stats{Shards: len(db.shards), Sharded: db.sharded}
	for _, s := range db.shards {
		ss := s.stats()
		st.WALWrites += ss.WALWrites
		st.WALSyncs += ss.WALSyncs
		st.Segments += ss.Segments
		st.Bytes += ss.Bytes
		if db.sharded {
			st.PerShard = append(st.PerShard, ss)
		}
	}
	if db.comp != nil {
		st.Compactor = db.comp.snapshot()
	}
	return st
}

// Stat returns metadata without touching the blob (no decompression).
func (t *Table) Stat(key string) (*Record, error) {
	s := t.db.shardFor(t.name, key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	r, ok := s.tables[t.name][key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
	}
	meta := make(map[string]string, len(r.meta))
	for k, v := range r.meta {
		meta[k] = v
	}
	return &Record{
		Key: key, Meta: meta,
		StoredAt: r.storedAt, CompressedSize: len(r.comp),
	}, nil
}

// Delete removes a record.
func (t *Table) Delete(key string) error {
	entry := &walEntry{Op: "delete", Table: t.name, Key: key}
	s := t.db.shardFor(t.name, key)
	if s.gc != nil {
		s.mu.RLock()
		_, ok := s.tables[t.name][key]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
		}
		return s.gc.commit(entry)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.tables[t.name][key]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, t.name, key)
	}
	if err := s.log(entry); err != nil {
		return err
	}
	s.apply(entry, s.seg)
	return nil
}

// Keys lists the table's keys, sorted.
func (t *Table) Keys() []string {
	var out []string
	for _, s := range t.db.shards {
		s.mu.RLock()
		for k := range s.tables[t.name] {
			out = append(out, k)
		}
		s.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Len reports the number of rows.
func (t *Table) Len() int {
	n := 0
	for _, s := range t.db.shards {
		s.mu.RLock()
		n += len(s.tables[t.name])
		s.mu.RUnlock()
	}
	return n
}

// shardFor routes a key to its shard: FNV-1a over table and key, with a
// separator so ("ab","c") and ("a","bc") differ. Stable across restarts
// — the on-disk grouping depends on it.
func (db *DB) shardFor(table, key string) *shard {
	if len(db.shards) == 1 {
		return db.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(table); i++ {
		h ^= uint32(table[i])
		h *= 16777619
	}
	h *= 16777619 // separator byte 0
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return db.shards[h%uint32(len(db.shards))]
}

// --- fault-injection seams ---

// walFile is what a shard writes its log through; production code wraps
// *os.File, tests swap newWALFile to inject write/sync/close faults.
type walFile interface {
	io.Writer
	Sync() error
	Close() error
}

var newWALFile = func(f *os.File) walFile { return f }

// fsyncDir makes a directory-entry change (rename, create, unlink)
// durable. A package variable so tests can count calls or inject faults.
var fsyncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- codec pools ---

// The gzip codecs and WAL encode buffers are pooled: Put/Get/log run on
// the invocation hot path, and per-call allocation of a gzip state
// machine (~1.4 MB for writers) dominated their profiles.
var (
	gzipWriterPool = sync.Pool{New: func() any {
		w, _ := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		return w
	}}
	gzipReaderPool sync.Pool
	walBufPool     = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// pooledGzipReader returns a reset pooled reader (or a fresh one) over r.
// Return it with gzipReaderPool.Put when done.
func pooledGzipReader(r io.Reader) (*gzip.Reader, error) {
	if zr, _ := gzipReaderPool.Get().(*gzip.Reader); zr != nil {
		if err := zr.Reset(r); err != nil {
			gzipReaderPool.Put(zr)
			return nil, err
		}
		return zr, nil
	}
	return gzip.NewReader(r)
}

// --- wire format: 4-byte big-endian length + JSON ---

func writeEntry(w io.Writer, e *walEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(b)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readEntry decodes one entry and reports its encoded size. Short reads
// surface as io.ErrUnexpectedEOF (a torn tail); bad JSON or an absurd
// length surface as ErrCorrupt.
func readEntry(r io.Reader) (*walEntry, int64, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, io.ErrUnexpectedEOF
		}
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxBlobBytes*2 {
		return nil, 0, fmt.Errorf("%w: entry of %d bytes", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, io.ErrUnexpectedEOF
	}
	var e walEntry
	if err := json.Unmarshal(buf, &e); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &e, int64(4 + n), nil
}
