package blobdb

import (
	"errors"
	"os"
	"sync"
	"testing"
)

// faultFile wraps a real WAL file and injects errors on demand.
type faultFile struct {
	f     *os.File
	fault *faultPlan
}

// faultPlan is shared by every file the plan wraps; tests flip the error
// fields between operations.
type faultPlan struct {
	mu        sync.Mutex
	syncErr   error
	closeErr  error
	syncCalls int
}

func (p *faultPlan) set(syncErr, closeErr error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.syncErr, p.closeErr = syncErr, closeErr
}

func (ff *faultFile) Write(b []byte) (int, error) { return ff.f.Write(b) }

func (ff *faultFile) Sync() error {
	ff.fault.mu.Lock()
	err := ff.fault.syncErr
	ff.fault.syncCalls++
	ff.fault.mu.Unlock()
	if err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	ff.fault.mu.Lock()
	err := ff.fault.closeErr
	ff.fault.mu.Unlock()
	cerr := ff.f.Close()
	if err != nil {
		return err
	}
	return cerr
}

// installFaultPlan reroutes newWALFile through a faultFile for the
// duration of the test.
func installFaultPlan(t *testing.T) *faultPlan {
	t.Helper()
	plan := &faultPlan{}
	prev := newWALFile
	newWALFile = func(f *os.File) walFile { return &faultFile{f: f, fault: plan} }
	t.Cleanup(func() { newWALFile = prev })
	return plan
}

// installFsyncDirCounter reroutes fsyncDir through a counter with an
// injectable error.
type dirFsyncPlan struct {
	mu    sync.Mutex
	calls int
	err   error
}

func installFsyncDirCounter(t *testing.T) *dirFsyncPlan {
	t.Helper()
	plan := &dirFsyncPlan{}
	prev := fsyncDir
	fsyncDir = func(dir string) error {
		plan.mu.Lock()
		plan.calls++
		err := plan.err
		plan.mu.Unlock()
		if err != nil {
			return err
		}
		return prev(dir)
	}
	t.Cleanup(func() { fsyncDir = prev })
	return plan
}

func (p *dirFsyncPlan) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

// TestCompactFsyncsDirectory pins the satellite bugfix: stock Compact
// must fsync the directory after the snapshot rename, and must surface
// an injected directory-fsync failure instead of truncating the WAL on
// top of a rename that may not be durable.
func TestCompactFsyncsDirectory(t *testing.T) {
	plan := installFsyncDirCounter(t)
	db, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Table("t").Put("k", nil, []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := plan.count()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if plan.count() <= before {
		t.Fatal("Compact did not fsync the directory after its rename")
	}
	boom := errors.New("dir fsync boom")
	plan.mu.Lock()
	plan.err = boom
	plan.mu.Unlock()
	if err := db.Compact(); !errors.Is(err, boom) {
		t.Fatalf("Compact error = %v, want injected %v", err, boom)
	}
	plan.mu.Lock()
	plan.err = nil
	plan.mu.Unlock()
	// The failed compact must leave the store serving and durable.
	if err := db.Table("t").Put("k2", nil, []byte("v2")); err != nil {
		t.Fatalf("put after failed compact: %v", err)
	}
}

// TestSegmentRollFsyncsDirectory checks the sharded counterpart: sealing
// a segment fsyncs the directory so the new segment file's existence
// survives a crash.
func TestSegmentRollFsyncsDirectory(t *testing.T) {
	plan := installFsyncDirCounter(t)
	db, err := Open(Options{Dir: t.TempDir(), WALShards: 2, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab := db.Table("t")
	if err := tab.Put("a", nil, []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := plan.count()
	// SegmentBytes 1: the next put to the same shard must roll first.
	if err := tab.Put("a", nil, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if plan.count() <= before {
		t.Fatal("segment roll did not fsync the directory")
	}
}

// TestCloseSyncErrorPoisons pins the shutdown satellite: a failing WAL
// Sync at Close must propagate (first error wins over the follow-up
// Close) and leave the database poisoned — ErrClosed everywhere, nil on
// a second Close.
func TestCloseSyncErrorPoisons(t *testing.T) {
	plan := installFaultPlan(t)
	db, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	if err := tab.Put("k", nil, []byte("v")); err != nil {
		t.Fatal(err)
	}
	syncBoom := errors.New("sync boom")
	closeBoom := errors.New("close boom")
	plan.set(syncBoom, closeBoom)
	if err := db.Close(); !errors.Is(err, syncBoom) {
		t.Fatalf("Close = %v, want first error %v", err, syncBoom)
	}
	if err := tab.Put("k2", nil, []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after failed Close = %v, want ErrClosed", err)
	}
	if _, err := tab.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after failed Close = %v, want ErrClosed", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact after failed Close = %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// TestCloseCloseErrorPropagates: when Sync succeeds but the file Close
// fails, that error surfaces too.
func TestCloseCloseErrorPropagates(t *testing.T) {
	plan := installFaultPlan(t)
	db, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Table("t").Put("k", nil, []byte("v")); err != nil {
		t.Fatal(err)
	}
	closeBoom := errors.New("close boom")
	plan.set(nil, closeBoom)
	if err := db.Close(); !errors.Is(err, closeBoom) {
		t.Fatalf("Close = %v, want %v", err, closeBoom)
	}
}

// TestCloseSyncErrorPoisonsSharded: the first failing shard's error wins
// and every shard ends up poisoned.
func TestCloseSyncErrorPoisonsSharded(t *testing.T) {
	plan := installFaultPlan(t)
	db, err := Open(Options{Dir: t.TempDir(), WALShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		if err := tab.Put(k, nil, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	syncBoom := errors.New("sync boom")
	plan.set(syncBoom, nil)
	if err := db.Close(); !errors.Is(err, syncBoom) {
		t.Fatalf("Close = %v, want %v", err, syncBoom)
	}
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		if err := tab.Put(k, nil, []byte("w")); !errors.Is(err, ErrClosed) {
			t.Fatalf("Put(%s) after failed Close = %v, want ErrClosed", k, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}
