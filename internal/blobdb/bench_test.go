package blobdb

import (
	"fmt"
	"testing"

	"repro/internal/gsh"
)

func benchBlob(size int) []byte {
	// Incompressible-ish content, as user binaries are.
	return gsh.Pad([]byte("echo x\n"), size)
}

func BenchmarkPut(b *testing.B) {
	for _, size := range []int{4 << 10, 256 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			db, err := Open(Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			blob := benchBlob(size)
			tab := db.Table("bench")
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tab.Put("k", nil, blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGet(b *testing.B) {
	for _, size := range []int{4 << 10, 256 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("%dKB", size>>10), func(b *testing.B) {
			db, err := Open(Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			tab := db.Table("bench")
			if err := tab.Put("k", nil, benchBlob(size)); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tab.Get("k"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPersistentPut(b *testing.B) {
	db, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	blob := benchBlob(64 << 10)
	tab := db.Table("bench")
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.Put(fmt.Sprintf("k%d", i%32), nil, blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	blob := benchBlob(16 << 10)
	for i := 0; i < 100; i++ {
		db.Table("bench").Put(fmt.Sprintf("k%03d", i), nil, blob)
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := Open(Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if db.Table("bench").Len() != 100 {
			b.Fatal("rows lost")
		}
		db.Close()
	}
}
