package blobdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// entryOffsets parses a WAL/segment file and returns the byte offset
// after each whole entry, plus the keys in order.
func entryOffsets(t *testing.T, path string) (offs []int64, keys []string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(raw)
	var off int64
	for {
		e, n, err := readEntry(r)
		if err != nil {
			break
		}
		off += n
		offs = append(offs, off)
		keys = append(keys, e.Key)
	}
	return offs, keys
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		raw, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashRecoveryEveryTruncationStock kills the stock WAL at every
// byte boundary inside the final entry: every earlier (acked) put must
// recover, only the torn tail may vanish, and the truncated log must
// keep accepting appends that survive another reopen.
func TestCrashRecoveryEveryTruncationStock(t *testing.T) {
	src := t.TempDir()
	db, err := Open(Options{Dir: src})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	const puts = 5
	for i := 0; i < puts; i++ {
		if err := tab.Put(fmt.Sprintf("k%d", i), map[string]string{"i": fmt.Sprint(i)}, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(src, walName)
	offs, keys := entryOffsets(t, walPath)
	if len(offs) != puts {
		t.Fatalf("parsed %d entries, want %d", len(offs), puts)
	}
	prevGood := offs[len(offs)-2]
	end := offs[len(offs)-1]
	lastKey := keys[len(keys)-1]
	for cut := prevGood + 1; cut < end; cut++ {
		dir := copyDir(t, src)
		if err := os.Truncate(filepath.Join(dir, walName), cut); err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		tab := db.Table("t")
		for _, k := range keys[:len(keys)-1] {
			if _, err := tab.Stat(k); err != nil {
				t.Fatalf("cut %d: lost acked put %s: %v", cut, k, err)
			}
		}
		if _, err := tab.Stat(lastKey); err == nil {
			t.Fatalf("cut %d: torn entry %s survived", cut, lastKey)
		}
		// The fixed recovery truncates the torn bytes, so this append must
		// not bury garbage mid-log.
		if err := tab.Put("after-crash", nil, []byte("x")); err != nil {
			t.Fatalf("cut %d: put after recovery: %v", cut, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		db2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: reopen after append: %v", cut, err)
		}
		if _, err := db2.Table("t").Stat("after-crash"); err != nil {
			t.Fatalf("cut %d: post-crash append lost: %v", cut, err)
		}
		db2.Close()
	}
}

// TestCrashRecoveryEveryTruncationSharded does the same for a sharded
// layout: the torn shard loses only its final entry; the other shards
// are untouched.
func TestCrashRecoveryEveryTruncationSharded(t *testing.T) {
	src := t.TempDir()
	opts := Options{Dir: src, WALShards: 3}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	var keys []string
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("k%d", i)
		keys = append(keys, k)
		if err := tab.Put(k, nil, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Pick the busiest shard's live segment to tear.
	victim := -1
	var segPath string
	var best int
	for s := 0; s < 3; s++ {
		p := filepath.Join(src, segmentFile(s, 0))
		offs, _ := entryOffsets(t, p)
		if len(offs) > best {
			best, victim, segPath = len(offs), s, p
		}
	}
	if victim < 0 || best < 2 {
		t.Fatalf("no shard with >= 2 entries (best %d)", best)
	}
	offs, segKeys := entryOffsets(t, segPath)
	prevGood := offs[len(offs)-2]
	end := offs[len(offs)-1]
	lastKey := segKeys[len(segKeys)-1]
	for cut := prevGood + 1; cut < end; cut++ {
		dir := copyDir(t, src)
		if err := os.Truncate(filepath.Join(dir, segmentFile(victim, 0)), cut); err != nil {
			t.Fatal(err)
		}
		db, err := Open(Options{Dir: dir, WALShards: 3})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		tab := db.Table("t")
		for _, k := range keys {
			_, err := tab.Stat(k)
			if k == lastKey {
				if err == nil {
					t.Fatalf("cut %d: torn entry %s survived", cut, k)
				}
				continue
			}
			if err != nil {
				t.Fatalf("cut %d: lost acked put %s: %v", cut, k, err)
			}
		}
		if err := tab.Put("after-crash", nil, []byte("x")); err != nil {
			t.Fatalf("cut %d: put after recovery: %v", cut, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		db2, err := Open(Options{Dir: dir, WALShards: 3})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if _, err := db2.Table("t").Stat("after-crash"); err != nil {
			t.Fatalf("cut %d: post-crash append lost: %v", cut, err)
		}
		db2.Close()
	}
}

// FuzzWALReplay feeds arbitrary bytes to recovery as WAL/segment
// content: replay must either succeed (recovering a prefix and cleanly
// truncating the rest) or report ErrCorrupt — never panic, and never
// silently lose a whole-entry prefix.
func FuzzWALReplay(f *testing.F) {
	entry := func(e *walEntry) []byte {
		var buf bytes.Buffer
		if err := writeEntry(&buf, e); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	good := entry(&walEntry{Op: "put", Table: "t", Key: "a", Comp: []byte("zz"), RawSize: 2})
	f.Add([]byte{})
	f.Add(good)
	f.Add(append(append([]byte{}, good...), good[:7]...)) // torn tail
	f.Add([]byte("garbage that is not a wal"))
	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, 1<<31)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, raw []byte) {
		for _, shards := range []int{1, 2} {
			dir := t.TempDir()
			opts := Options{Dir: dir, WALShards: shards}
			var target string
			if shards == 1 {
				target = filepath.Join(dir, walName)
			} else {
				// Declare the sharded layout, then plant raw as one segment.
				db, err := Open(opts)
				if err != nil {
					t.Fatal(err)
				}
				db.Close()
				target = filepath.Join(dir, segmentFile(0, 0))
			}
			if err := os.WriteFile(target, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			// Count the whole-entry prefix raw decodes to.
			wantEntries, _, _, perr := replayReader(bytes.NewReader(raw), false, func(*walEntry) {})
			db, err := Open(opts)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("open: %v (want nil or ErrCorrupt)", err)
				}
				if perr == nil {
					t.Fatalf("clean prefix of %d entries reported corrupt: %v", wantEntries, err)
				}
				continue
			}
			if perr != nil {
				t.Fatalf("corrupt input opened cleanly (parse err %v)", perr)
			}
			db.Close()
		}
	})
}
