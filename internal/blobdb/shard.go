package blobdb

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// shard is one slice of the keyspace with its own lock, tables, and WAL.
// Stock databases run a single shard over the legacy wal.log (segs nil,
// no rolling); sharded databases give each shard a segmented log and
// track per-segment liveness so compaction can retire sealed segments.
type shard struct {
	db  *DB
	idx int

	mu     sync.RWMutex
	tables map[string]map[string]*row
	closed bool
	genSeq uint64

	wal      walFile
	seg      int   // live segment index (always 0 for stock)
	segBytes int64 // bytes in the live segment
	// segs tracks per-segment entry/liveness counts; nil for the stock
	// layout and for in-memory databases.
	segs map[int]*segMeta
	// tombs maps table\x00key to the segment holding the latest delete
	// entry for a key with no surviving row — the delete must stay on
	// disk (it is "live") until a snapshot covers its segment.
	tombs map[string]int

	// walWrites / walSyncs count WAL write and fsync calls (group-commit
	// batching makes walWrites < puts under concurrency).
	walWrites int64
	walSyncs  int64

	gc *groupCommitter // per-shard WAL group commit; nil when disabled

	// compactMu serialises whole compaction cycles (manual Compact vs the
	// background compactor): interleaved snapshot renames could otherwise
	// let an older snapshot land after a newer one retired its segments.
	compactMu sync.Mutex
}

// segMeta is one WAL segment's bookkeeping.
type segMeta struct {
	bytes   int64
	entries int64 // entries written to the segment
	live    int64 // entries not yet superseded by later writes
	sealed  bool  // no longer the append target
}

func (s *shard) segMeta(seg int) *segMeta {
	m := s.segs[seg]
	if m == nil {
		m = &segMeta{}
		s.segs[seg] = m
	}
	return m
}

func (s *shard) noteEntry(seg int) {
	if seg >= 0 {
		m := s.segMeta(seg)
		m.entries++
		m.live++
	}
}

func (s *shard) noteDead(seg int) {
	if m := s.segs[seg]; m != nil {
		m.live--
	}
}

// apply installs one entry into the in-memory state, maintaining the
// per-segment liveness counts when the shard is segmented. seg is the
// segment the entry was logged to; -1 means "from a snapshot". Callers
// hold s.mu (or own the shard exclusively, as recovery does).
func (s *shard) apply(e *walEntry, seg int) {
	t := s.tables[e.Table]
	if t == nil {
		t = make(map[string]*row)
		s.tables[e.Table] = t
	}
	tk := e.Table + "\x00" + e.Key
	switch e.Op {
	case "put":
		s.genSeq++
		if s.segs != nil {
			s.noteEntry(seg)
			if old, ok := t[e.Key]; ok {
				s.noteDead(old.seg)
			} else if ts, ok := s.tombs[tk]; ok {
				s.noteDead(ts)
				delete(s.tombs, tk)
			}
		}
		t[e.Key] = &row{meta: e.Meta, comp: e.Comp, rawSize: e.RawSize,
			storedAt: e.StoredAt, gen: s.genSeq, seg: seg}
	case "delete":
		if s.segs != nil {
			s.noteEntry(seg)
			if old, ok := t[e.Key]; ok {
				s.noteDead(old.seg)
				if seg >= 0 {
					s.tombs[tk] = seg
				}
			} else if ts, ok := s.tombs[tk]; ok {
				s.noteDead(ts)
				if seg >= 0 {
					s.tombs[tk] = seg
				} else {
					delete(s.tombs, tk)
				}
			} else if seg >= 0 {
				// Delete of a key that never existed in replayed history:
				// the entry is dead the moment it lands.
				s.noteDead(seg)
			}
		}
		delete(t, e.Key)
	}
	if s.db.cache != nil {
		s.db.cache.invalidate(tk)
	}
}

// log appends an entry to the shard's WAL (if persistent), rolling the
// live segment first when it is over the limit, and accounts the disk
// write either way — the paper's DB writes hit disk whether or not our
// test process does. Callers hold s.mu.
func (s *shard) log(e *walEntry) error {
	var n int
	if s.wal != nil {
		if err := s.maybeRoll(); err != nil {
			return err
		}
		buf := walBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		if err := writeEntry(buf, e); err != nil {
			walBufPool.Put(buf)
			return err
		}
		n = buf.Len()
		_, err := s.wal.Write(buf.Bytes())
		walBufPool.Put(buf)
		if err != nil {
			return err
		}
		s.walWrites++
		s.noteWritten(int64(n))
	} else {
		n = len(e.Comp) + 128
	}
	s.db.probe.DiskWrite(n)
	return nil
}

// noteWritten accounts n appended bytes to the live segment.
func (s *shard) noteWritten(n int64) {
	s.segBytes += n
	if s.segs != nil {
		s.segMeta(s.seg).bytes += n
	}
}

// maybeRoll seals the live segment and opens the next once it passes the
// limit. Stock shards (segs nil) never roll.
func (s *shard) maybeRoll() error {
	if s.segs == nil || s.segBytes < s.db.segLimit {
		return nil
	}
	return s.roll()
}

// roll seals the live segment — syncing it and fsyncing the directory so
// both the sealed bytes and the new segment's entry survive a crash —
// and swaps appends to the next segment file. Callers hold s.mu.
func (s *shard) roll() error {
	next := s.seg + 1
	path := filepath.Join(s.db.dir, segmentFile(s.idx, next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	s.walSyncs++
	if err := fsyncDir(s.db.dir); err != nil {
		f.Close()
		return err
	}
	s.wal.Close()
	s.segMeta(s.seg).sealed = true
	s.seg = next
	s.segBytes = 0
	s.segMeta(next)
	s.wal = newWALFile(f)
	return nil
}

// compactSnapshot folds the shard's state into its snapshot file and
// retires every segment the snapshot covers. Only the seal (a roll) and
// the state copy run under the shard's write lock; the snapshot write
// happens beside live traffic. The snapshot records a floor (first
// segment it does NOT cover), which makes the subsequent unlinks
// crash-safe in any order: a resurrected pre-floor segment is skipped at
// replay.
func (s *shard) compactSnapshot() (compactOutcome, error) {
	var out compactOutcome
	db := s.db
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	sp := db.tracer.StartRoot("db.compact")
	sp.Set("layout", "sharded")
	sp.SetInt("shard", int64(s.idx))
	fail := func(err error) (compactOutcome, error) {
		sp.Error(err.Error())
		sp.End()
		return out, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fail(ErrClosed)
	}
	if s.wal == nil || s.segs == nil {
		s.mu.Unlock()
		sp.End()
		return out, nil // in-memory
	}
	// Seal the live segment iff it holds anything, so the snapshot's
	// coverage cuts at a segment boundary; an empty live segment means
	// repeated Compact calls don't churn out new files.
	if s.segBytes > 0 || s.segMeta(s.seg).entries > 0 {
		if err := s.roll(); err != nil {
			s.mu.Unlock()
			return fail(err)
		}
	}
	cut := s.seg - 1
	covered := 0
	for i := range s.segs {
		if i <= cut {
			covered++
		}
	}
	if covered == 0 {
		s.mu.Unlock()
		sp.End()
		return out, nil // nothing sealed: snapshot already current
	}
	// Rows are immutable after apply, so shallow-copying the maps gives a
	// consistent view of everything in segments <= cut; writes landing
	// after we unlock go to the fresh live segment, which replays after
	// the snapshot.
	state := make(map[string]map[string]*row, len(s.tables))
	for tn, rows := range s.tables {
		cp := make(map[string]*row, len(rows))
		for k, r := range rows {
			cp[k] = r
		}
		state[tn] = cp
	}
	s.mu.Unlock()

	tmp, err := os.CreateTemp(db.dir, "snaptmp-*")
	if err != nil {
		return fail(err)
	}
	defer os.Remove(tmp.Name())
	if err := writeEntry(tmp, &walEntry{Op: opFloor, RawSize: cut + 1}); err != nil {
		tmp.Close()
		return fail(err)
	}
	var snapBytes int64
	for table, rows := range state {
		for key, r := range rows {
			e := &walEntry{Op: "put", Table: table, Key: key, Meta: r.meta,
				Comp: r.comp, RawSize: r.rawSize, StoredAt: r.storedAt}
			if err := writeEntry(tmp, e); err != nil {
				tmp.Close()
				return fail(err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fail(err)
	}
	if fi, err := tmp.Stat(); err == nil {
		snapBytes = fi.Size()
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(db.dir, shardSnapshotFile(s.idx))); err != nil {
		return fail(err)
	}
	if err := fsyncDir(db.dir); err != nil {
		return fail(err)
	}

	s.mu.Lock()
	var victims []int
	for i, m := range s.segs {
		if i <= cut {
			out.retiredSegs++
			out.retiredBytes += m.bytes
			victims = append(victims, i)
			delete(s.segs, i)
		}
	}
	for k, tseg := range s.tombs {
		if tseg <= cut {
			delete(s.tombs, k)
		}
	}
	s.mu.Unlock()
	for _, i := range victims {
		os.Remove(filepath.Join(db.dir, segmentFile(s.idx, i)))
	}
	out.snapBytes = snapBytes
	sp.SetInt("floor", int64(cut+1))
	sp.SetInt("retired_segments", int64(out.retiredSegs))
	sp.SetInt("retired_bytes", out.retiredBytes)
	sp.SetInt("snapshot_bytes", snapBytes)
	sp.End()
	return out, nil
}

type compactOutcome struct {
	retiredSegs  int
	retiredBytes int64
	snapBytes    int64
}

// retireDead unlinks sealed segments whose entries are all superseded.
// No snapshot rewrite is needed: every superseding entry lives in a
// later, surviving segment, so replay is identical with or without the
// victim — which also makes the unlink crash-safe.
func (s *shard) retireDead() (segs int, bytes int64) {
	s.mu.Lock()
	if s.segs == nil {
		s.mu.Unlock()
		return 0, 0
	}
	var victims []int
	for i, m := range s.segs {
		if m.sealed && m.live == 0 {
			victims = append(victims, i)
			bytes += m.bytes
			delete(s.segs, i)
		}
	}
	s.mu.Unlock()
	for _, i := range victims {
		os.Remove(filepath.Join(s.db.dir, segmentFile(s.idx, i)))
	}
	return len(victims), bytes
}

// sealedGarbage reports the dead/total entry counts across sealed
// segments, for the compactor's threshold decision.
func (s *shard) sealedGarbage() (dead, total int64, sealed int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, m := range s.segs {
		if m.sealed {
			dead += m.entries - m.live
			total += m.entries
			sealed++
		}
	}
	return dead, total, sealed
}

func (s *shard) stats() ShardStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ss := ShardStats{Shard: s.idx, WALWrites: s.walWrites, WALSyncs: s.walSyncs}
	for _, m := range s.segs {
		ss.Segments++
		ss.Bytes += m.bytes
		ss.LiveEntries += m.live
		ss.DeadEntries += m.entries - m.live
	}
	if s.segs == nil {
		ss.Bytes = s.segBytes
	}
	return ss
}

// --- sharded-layout file names ---

func segmentFile(shard, seg int) string {
	return fmt.Sprintf("wal-%d-%06d.log", shard, seg)
}

func shardSnapshotFile(shard int) string {
	return fmt.Sprintf("snapshot-%d.db", shard)
}
