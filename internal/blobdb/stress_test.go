package blobdb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentCompactAndWrites hammers Put/Get/Delete while Compact
// runs repeatedly: no writes may be lost and recovery must see the final
// state.
func TestConcurrentCompactAndWrites(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	tab := db.Table("stress")

	const writers = 8
	const perWriter = 30
	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				blob := bytes.Repeat([]byte{byte(w)}, 100+i)
				if err := tab.Put(key, map[string]string{"i": fmt.Sprint(i)}, blob); err != nil {
					errs <- err
					return
				}
				if _, err := tab.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := db.Compact(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if tab.Len() != writers*perWriter {
		t.Fatalf("rows %d, want %d", tab.Len(), writers*perWriter)
	}
	db.Close()

	// Recovery sees everything.
	db2 := diskDB(t, dir)
	defer db2.Close()
	tab2 := db2.Table("stress")
	if tab2.Len() != writers*perWriter {
		t.Fatalf("recovered %d rows, want %d", tab2.Len(), writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			rec, err := tab2.Get(fmt.Sprintf("w%d-k%d", w, i))
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Blob) != 100+i {
				t.Fatalf("blob w%d-k%d has %d bytes", w, i, len(rec.Blob))
			}
		}
	}
}

func TestCompactShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	tab := db.Table("t")
	// Overwrite the same key many times: the WAL grows, the state doesn't.
	blob := bytes.Repeat([]byte("x"), 10_000)
	for i := 0; i < 50; i++ {
		if err := tab.Put("k", nil, blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2 := diskDB(t, dir)
	defer db2.Close()
	rec, err := db2.Table("t").Get("k")
	if err != nil || !bytes.Equal(rec.Blob, blob) {
		t.Fatalf("post-compact state lost: %v", err)
	}
}

func TestDeleteSurvivesCompactAndRecovery(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	db.Table("t").Put("keep", nil, []byte("a"))
	db.Table("t").Put("drop", nil, []byte("b"))
	db.Compact()
	db.Table("t").Delete("drop") // delete lands in the post-compact WAL
	db.Close()
	db2 := diskDB(t, dir)
	defer db2.Close()
	if _, err := db2.Table("t").Get("keep"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Table("t").Get("drop"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted row resurrected: %v", err)
	}
}
