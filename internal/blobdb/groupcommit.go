package blobdb

import (
	"bytes"
	"sync"
)

// groupCommitter batches concurrent WAL appends into one write with a
// single fsync. Writers hand their entry to the committer goroutine and
// block until their batch is durable; the committer drains everything
// queued, appends the batch in one write, syncs once, and only then —
// append-before-apply — applies the entries to memory in batch order.
//
// Compared with the stock path (one unsynced write per mutation under
// the database lock), group commit both amortises the flush across the
// batch and upgrades durability: an acknowledged Put survives a crash.
//
// Each committer serves one shard: with WALShards >= 2 there are N of
// them, so batches on different shards form and flush in parallel.
type groupCommitter struct {
	s    *shard
	ch   chan *commitReq
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

type commitReq struct {
	entry *walEntry
	errc  chan error
}

func startGroupCommitter(s *shard) *groupCommitter {
	g := &groupCommitter{
		s:    s,
		ch:   make(chan *commitReq, 256),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go g.run()
	return g
}

// commit enqueues one entry and blocks until it is durable and applied.
func (g *groupCommitter) commit(e *walEntry) error {
	req := &commitReq{entry: e, errc: make(chan error, 1)}
	select {
	case g.ch <- req:
	case <-g.stop:
		return ErrClosed
	}
	select {
	case err := <-req.errc:
		return err
	case <-g.done:
		// The committer drained and exited; the request either made the
		// final batch (errc is buffered) or lost the shutdown race.
		select {
		case err := <-req.errc:
			return err
		default:
			return ErrClosed
		}
	}
}

// shutdown stops the committer after it flushes everything queued.
func (g *groupCommitter) shutdown() {
	g.once.Do(func() { close(g.stop) })
	<-g.done
}

func (g *groupCommitter) run() {
	defer close(g.done)
	for {
		var batch []*commitReq
		select {
		case r := <-g.ch:
			batch = append(batch, r)
		case <-g.stop:
			for {
				select {
				case r := <-g.ch:
					batch = append(batch, r)
				default:
					if len(batch) > 0 {
						g.flush(batch)
					}
					return
				}
			}
		}
		// Opportunistic batching: take whatever else queued up while the
		// previous flush was on the disk.
		for more := true; more; {
			select {
			case r := <-g.ch:
				batch = append(batch, r)
			default:
				more = false
			}
		}
		g.flush(batch)
	}
}

// flush makes one WAL append + fsync for the whole batch, then applies
// the entries in batch order and releases the waiters.
func (g *groupCommitter) flush(batch []*commitReq) {
	s := g.s
	buf := walBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	sizes := make([]int, len(batch))
	errs := make([]error, len(batch))
	prev := 0
	for i, r := range batch {
		if err := writeEntry(buf, r.entry); err != nil {
			errs[i] = err
			buf.Truncate(prev)
		}
		sizes[i] = buf.Len() - prev
		prev = buf.Len()
	}
	s.mu.Lock()
	var werr error
	switch {
	case s.closed:
		werr = ErrClosed
	case s.wal != nil && buf.Len() > 0:
		if err := s.maybeRoll(); err != nil {
			werr = err
			break
		}
		if _, err := s.wal.Write(buf.Bytes()); err != nil {
			werr = err
		} else if err := s.wal.Sync(); err != nil {
			werr = err
		} else {
			s.walWrites++
			s.walSyncs++
			s.noteWritten(int64(buf.Len()))
		}
	}
	for i, r := range batch {
		if errs[i] == nil {
			errs[i] = werr
		}
		if errs[i] == nil {
			s.apply(r.entry, s.seg)
			s.db.probe.DiskWrite(sizes[i])
		}
	}
	s.mu.Unlock()
	walBufPool.Put(buf)
	for i, r := range batch {
		r.errc <- errs[i]
	}
}
