package blobdb

import (
	"bytes"
	"sync"
)

// groupCommitter batches concurrent WAL appends into one write with a
// single fsync. Writers hand their entry to the committer goroutine and
// block until their batch is durable; the committer drains everything
// queued, appends the batch in one write, syncs once, and only then —
// append-before-apply — applies the entries to memory in batch order.
//
// Compared with the stock path (one unsynced write per mutation under
// the database lock), group commit both amortises the flush across the
// batch and upgrades durability: an acknowledged Put survives a crash.
type groupCommitter struct {
	db   *DB
	ch   chan *commitReq
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

type commitReq struct {
	entry *walEntry
	errc  chan error
}

func startGroupCommitter(db *DB) *groupCommitter {
	g := &groupCommitter{
		db:   db,
		ch:   make(chan *commitReq, 256),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go g.run()
	return g
}

// commit enqueues one entry and blocks until it is durable and applied.
func (g *groupCommitter) commit(e *walEntry) error {
	req := &commitReq{entry: e, errc: make(chan error, 1)}
	select {
	case g.ch <- req:
	case <-g.stop:
		return ErrClosed
	}
	select {
	case err := <-req.errc:
		return err
	case <-g.done:
		// The committer drained and exited; the request either made the
		// final batch (errc is buffered) or lost the shutdown race.
		select {
		case err := <-req.errc:
			return err
		default:
			return ErrClosed
		}
	}
}

// shutdown stops the committer after it flushes everything queued.
func (g *groupCommitter) shutdown() {
	g.once.Do(func() { close(g.stop) })
	<-g.done
}

func (g *groupCommitter) run() {
	defer close(g.done)
	for {
		var batch []*commitReq
		select {
		case r := <-g.ch:
			batch = append(batch, r)
		case <-g.stop:
			for {
				select {
				case r := <-g.ch:
					batch = append(batch, r)
				default:
					if len(batch) > 0 {
						g.flush(batch)
					}
					return
				}
			}
		}
		// Opportunistic batching: take whatever else queued up while the
		// previous flush was on the disk.
		for more := true; more; {
			select {
			case r := <-g.ch:
				batch = append(batch, r)
			default:
				more = false
			}
		}
		g.flush(batch)
	}
}

// flush makes one WAL append + fsync for the whole batch, then applies
// the entries in batch order and releases the waiters.
func (g *groupCommitter) flush(batch []*commitReq) {
	db := g.db
	buf := walBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	sizes := make([]int, len(batch))
	errs := make([]error, len(batch))
	prev := 0
	for i, r := range batch {
		if err := writeEntry(buf, r.entry); err != nil {
			errs[i] = err
			buf.Truncate(prev)
		}
		sizes[i] = buf.Len() - prev
		prev = buf.Len()
	}
	db.mu.Lock()
	var werr error
	switch {
	case db.closed:
		werr = ErrClosed
	case db.wal != nil && buf.Len() > 0:
		if _, err := db.wal.Write(buf.Bytes()); err != nil {
			werr = err
		} else if err := db.wal.Sync(); err != nil {
			werr = err
		} else {
			db.walWrites++
			db.walSyncs++
		}
	}
	for i, r := range batch {
		if errs[i] == nil {
			errs[i] = werr
		}
		if errs[i] == nil {
			db.apply(r.entry)
			db.probe.DiskWrite(sizes[i])
		}
	}
	db.mu.Unlock()
	walBufPool.Put(buf)
	for i, r := range batch {
		r.errc <- errs[i]
	}
}
