package blobdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func countFiles(t *testing.T, dir, pattern string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestShardedRoundTripAndReopen: basic CRUD across shards, with the
// merged Keys/Len/TableNames views, surviving a clean reopen.
func TestShardedRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	open := func() *DB {
		db, err := Open(Options{Dir: dir, WALShards: 4})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	tab := db.Table("exe")
	var keys []string
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("svc-%02d", i)
		keys = append(keys, k)
		if err := tab.Put(k, map[string]string{"i": fmt.Sprint(i)}, []byte("blob-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Delete("svc-07"); err != nil {
		t.Fatal(err)
	}
	if err := db.Table("other").Put("x", nil, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got := tab.Len(); got != 39 {
		t.Fatalf("Len = %d, want 39", got)
	}
	if names := db.TableNames(); !reflect.DeepEqual(names, []string{"exe", "other"}) {
		t.Fatalf("TableNames = %v", names)
	}
	st := db.Stats()
	if !st.Sharded || st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.WALWrites == 0 {
		t.Fatal("no WAL writes recorded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = open()
	defer db.Close()
	tab = db.Table("exe")
	for _, k := range keys {
		rec, err := tab.Get(k)
		if k == "svc-07" {
			if err == nil {
				t.Fatalf("deleted key %s resurrected", k)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if string(rec.Blob) != "blob-"+k {
			t.Fatalf("Get(%s) = %q", k, rec.Blob)
		}
	}
	got := tab.Keys()
	if len(got) != 39 {
		t.Fatalf("Keys len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Keys not sorted: %v", got)
		}
	}
}

// TestShardedSegmentsRollAndRecover: a tiny SegmentBytes forces rolls;
// the multi-segment layout must replay completely.
func TestShardedSegmentsRollAndRecover(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, WALShards: 2, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	for i := 0; i < 50; i++ {
		if err := tab.Put(fmt.Sprintf("k%02d", i), nil, []byte("some payload to push past the limit")); err != nil {
			t.Fatal(err)
		}
	}
	if n := countFiles(t, dir, "wal-*-*.log"); n < 4 {
		t.Fatalf("only %d segment files, want rolls", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(Options{Dir: dir, WALShards: 2, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Table("t").Len(); got != 50 {
		t.Fatalf("Len after reopen = %d, want 50", got)
	}
}

// TestManualCompactShardedRetiresSegments: Compact on a sharded store
// folds each shard to a snapshot and unlinks the covered segments.
func TestManualCompactShardedRetiresSegments(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, WALShards: 2, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	for round := 0; round < 20; round++ {
		for i := 0; i < 5; i++ {
			if err := tab.Put(fmt.Sprintf("k%d", i), nil, []byte(fmt.Sprintf("round %d payload padding", round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := countFiles(t, dir, "wal-*-*.log")
	if before < 3 {
		t.Fatalf("expected several segments before compact, got %d", before)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// Each shard keeps exactly its fresh live segment.
	if after := countFiles(t, dir, "wal-*-*.log"); after != 2 {
		t.Fatalf("segments after compact = %d, want 2", after)
	}
	if snaps := countFiles(t, dir, "snapshot-*.db"); snaps == 0 {
		t.Fatal("no shard snapshots written")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(Options{Dir: dir, WALShards: 2, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		rec, err := db.Table("t").Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if string(rec.Blob) != "round 19 payload padding" {
			t.Fatalf("k%d = %q, want final round", i, rec.Blob)
		}
	}
}

// TestAutoCompactRetiresDeadSegmentsUnderTraffic: with overwrite-heavy
// traffic the background compactor must reclaim sealed garbage while
// the store keeps serving, and the surviving layout must replay.
func TestAutoCompactRetiresDeadSegmentsUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, WALShards: 2, SegmentBytes: 512,
		AutoCompact: true, CompactEvery: 2 * time.Millisecond}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 4; i++ {
			if err := tab.Put(fmt.Sprintf("k%d", i), nil, []byte("overwrite payload with some padding")); err != nil {
				t.Fatal(err)
			}
		}
		st := db.Stats()
		if st.Compactor.SegmentsRetired > 0 && st.Compactor.Runs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never retired a segment: %+v", st.Compactor)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Table("t").Len(); got != 4 {
		t.Fatalf("Len after reopen = %d, want 4", got)
	}
}

// TestLayoutMigration walks stock -> 4 shards -> 2 shards -> stock,
// checking data and the on-disk layout at each step.
func TestLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	check := func(db *DB, want map[string]string) {
		t.Helper()
		tab := db.Table("t")
		if got := tab.Len(); got != len(want) {
			t.Fatalf("Len = %d, want %d", got, len(want))
		}
		for k, v := range want {
			rec, err := tab.Get(k)
			if err != nil {
				t.Fatalf("Get(%s): %v", k, err)
			}
			if string(rec.Blob) != v {
				t.Fatalf("Get(%s) = %q, want %q", k, rec.Blob, v)
			}
		}
	}
	want := map[string]string{}
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%02d", i)
		want[k] = "v0-" + k
		if err := db.Table("t").Put(k, nil, []byte(want[k])); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// stock -> 4 shards
	db, err = Open(Options{Dir: dir, WALShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	check(db, want)
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Fatalf("manifest missing after expansion: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, walName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy wal.log survived expansion: %v", err)
	}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("new%d", i)
		want[k] = "v1-" + k
		if err := db.Table("t").Put(k, nil, []byte(want[k])); err != nil {
			t.Fatal(err)
		}
	}
	delete(want, "k03")
	if err := db.Table("t").Delete("k03"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// 4 shards -> 2 shards (reshard)
	db, err = Open(Options{Dir: dir, WALShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	check(db, want)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// 2 shards -> stock
	db, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	check(db, want)
	if _, err := os.Stat(filepath.Join(dir, manifestName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("manifest survived collapse: %v", err)
	}
	if n := countFiles(t, dir, "wal-*-*.log"); n != 0 {
		t.Fatalf("%d shard segments survived collapse", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// And a plain stock reopen still sees everything.
	db, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	check(db, want)
}

// TestShardedGroupCommitCrashDurability: per-shard committers must make
// every acked put durable — reopen without Close, nothing acked is lost.
func TestShardedGroupCommitCrashDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, WALShards: 4, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, per = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tab := db.Table("t")
			for i := 0; i < per; i++ {
				if err := tab.Put(fmt.Sprintf("w%d-k%d", w, i), nil, []byte("payload")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if _, syncs := db.WALStats(); syncs == 0 {
		t.Fatal("group commit never synced")
	}
	// Crash: no Close. Acked means synced, so everything must replay.
	db2, err := Open(Options{Dir: dir, WALShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Table("t").Len(); got != writers*per {
		t.Fatalf("Len after crash-reopen = %d, want %d", got, writers*per)
	}
}

// TestConcurrentShardedOpsWithCompactor is the race-gate satellite:
// writers, readers, and the background compactor all live on the same
// store at once; afterwards the acked state must survive a reopen.
func TestConcurrentShardedOpsWithCompactor(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, WALShards: 4, SegmentBytes: 1024,
		AutoCompact: true, CompactEvery: time.Millisecond, GroupCommit: true}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 32
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tab := db.Table("t")
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("k%d", (w*40+i)%keys)
				if err := tab.Put(k, nil, []byte(fmt.Sprintf("w%d i%d padding padding", w, i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tab := db.Table("t")
			for i := 0; i < 80; i++ {
				k := fmt.Sprintf("k%d", i%keys)
				if _, err := tab.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("get: %v", err)
					return
				}
				tab.Keys()
				db.Stats()
			}
		}()
	}
	wg.Wait()
	if err := db.Compact(); err != nil { // manual compact racing the background one
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Table("t").Len(); got != keys {
		t.Fatalf("Len after reopen = %d, want %d", got, keys)
	}
}

// TestCloseRacesCompaction: Close fired while puts are in flight and the
// compactor is sweeping must neither panic nor corrupt the store, and
// every put acked before Close must survive.
func TestCloseRacesCompaction(t *testing.T) {
	for round := 0; round < 8; round++ {
		dir := t.TempDir()
		opts := Options{Dir: dir, WALShards: 2, SegmentBytes: 256,
			AutoCompact: true, CompactEvery: time.Millisecond}
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		var acked sync.Map
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tab := db.Table("t")
				for i := 0; ; i++ {
					k := fmt.Sprintf("w%d-k%d", w, i%10)
					err := tab.Put(k, nil, []byte("payload under closing store"))
					if errors.Is(err, ErrClosed) {
						return
					}
					if err != nil {
						t.Errorf("put: %v", err)
						return
					}
					acked.Store(k, true)
				}
			}(w)
		}
		time.Sleep(10 * time.Millisecond) // let compactions overlap the close
		if err := db.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		wg.Wait()
		db2, err := Open(opts)
		if err != nil {
			t.Fatalf("reopen after racy close: %v", err)
		}
		tab := db2.Table("t")
		acked.Range(func(k, _ any) bool {
			if _, err := tab.Stat(k.(string)); err != nil {
				t.Errorf("acked key %v lost: %v", k, err)
				return false
			}
			return true
		})
		db2.Close()
	}
}

// TestStockLayoutFileSetUnchanged pins the off-by-default contract: with
// the knobs at zero value, the on-disk layout is exactly the seed's —
// wal.log plus snapshot.db, no manifest, no segments.
func TestStockLayoutFileSetUnchanged(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Table("t").Put("k", nil, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Table("t").Put("k2", nil, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if !reflect.DeepEqual(names, []string{"snapshot.db", "wal.log"}) {
		t.Fatalf("stock layout files = %v, want [snapshot.db wal.log]", names)
	}
}
