package blobdb

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

// cachedDB opens an in-memory database with the decompressed-blob LRU
// and a probe, so tests can observe both the cache counters and the
// modelled disk/CPU accounting a hit is supposed to skip.
func cachedDB(t *testing.T, cacheBytes int64) (*DB, *metrics.Recorder) {
	t.Helper()
	clk := vtime.NewScaled(100000)
	rec := metrics.NewRecorder(clk, 3*time.Second)
	db, err := Open(Options{
		Clock: clk, Probe: metrics.NewProbe(rec), Cost: metrics.DefaultCost(),
		BlobCacheBytes: cacheBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, rec
}

func TestBlobCacheHitSkipsLoadAndDecompress(t *testing.T) {
	db, rec := cachedDB(t, 1<<20)
	tab := db.Table("executables")
	blob := bytes.Repeat([]byte("payload "), 4096)
	if err := tab.Put("exe", nil, blob); err != nil {
		t.Fatal(err)
	}
	r1, err := tab.Get("exe")
	if err != nil {
		t.Fatal(err)
	}
	readsAfterMiss := rec.Total(metrics.DiskRead)
	cpuAfterMiss := rec.Total(metrics.CPU)
	if readsAfterMiss == 0 {
		t.Fatal("miss accounted no disk read")
	}
	r2, err := tab.Get("exe")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Blob, blob) || !bytes.Equal(r2.Blob, blob) {
		t.Fatal("blob corrupted through the cache")
	}
	if got := rec.Total(metrics.DiskRead); got != readsAfterMiss {
		t.Fatalf("hit accounted a disk read: %v -> %v", readsAfterMiss, got)
	}
	if got := rec.Total(metrics.CPU); got != cpuAfterMiss {
		t.Fatalf("hit accounted decompress CPU: %v -> %v", cpuAfterMiss, got)
	}
	hits, misses, size := db.BlobCacheStats()
	if hits != 1 || misses != 1 || size != int64(len(blob)) {
		t.Fatalf("stats hits=%d misses=%d size=%d", hits, misses, size)
	}
}

func TestBlobCacheCopiesAreIsolated(t *testing.T) {
	db, _ := cachedDB(t, 1<<20)
	tab := db.Table("t")
	if err := tab.Put("k", nil, []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	warm, _ := tab.Get("k") // populate
	warm.Blob[0] = 'X'
	hit, err := tab.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	hit.Blob[1] = 'Y'
	again, _ := tab.Get("k")
	if string(again.Blob) != "pristine" {
		t.Fatalf("caller mutation leaked into the cache: %q", again.Blob)
	}
}

func TestBlobCacheInvalidatedByPut(t *testing.T) {
	db, _ := cachedDB(t, 1<<20)
	tab := db.Table("t")
	tab.Put("k", nil, []byte("v1"))
	if r, _ := tab.Get("k"); string(r.Blob) != "v1" {
		t.Fatalf("got %q", r.Blob)
	}
	tab.Put("k", nil, []byte("v2"))
	r, err := tab.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(r.Blob) != "v2" {
		t.Fatalf("stale cached blob served after Put: %q", r.Blob)
	}
	if err := tab.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestBlobCacheEvictsLeastRecentlyUsed(t *testing.T) {
	blob := bytes.Repeat([]byte("x"), 4<<10)
	db, _ := cachedDB(t, int64(2*len(blob)+(len(blob)/2))) // room for two and a half
	tab := db.Table("t")
	for i := 0; i < 3; i++ {
		tab.Put(fmt.Sprintf("k%d", i), nil, blob)
	}
	for i := 0; i < 3; i++ { // cache k0,k1 then k2 evicts k0
		tab.Get(fmt.Sprintf("k%d", i))
	}
	_, _, size := db.BlobCacheStats()
	if size > int64(2*len(blob)+(len(blob)/2)) {
		t.Fatalf("cache over budget: %d", size)
	}
	_, missesBefore, _ := statsHitsMisses(db)
	tab.Get("k2") // most recent: must still be a hit
	hitsAfter, missesAfter, _ := statsHitsMisses(db)
	if missesAfter != missesBefore || hitsAfter == 0 {
		t.Fatalf("recent entry evicted: hits=%d misses %d->%d", hitsAfter, missesBefore, missesAfter)
	}
	tab.Get("k0") // oldest: evicted, so a miss
	_, missesFinal, _ := statsHitsMisses(db)
	if missesFinal != missesAfter+1 {
		t.Fatalf("LRU tail not evicted: misses %d->%d", missesAfter, missesFinal)
	}
}

func statsHitsMisses(db *DB) (int64, int64, int64) { return db.BlobCacheStats() }

func TestBlobCacheSkipsOversizedBlob(t *testing.T) {
	db, _ := cachedDB(t, 1<<10)
	tab := db.Table("t")
	tab.Put("big", nil, bytes.Repeat([]byte("x"), 4<<10))
	tab.Get("big")
	tab.Get("big")
	hits, _, size := db.BlobCacheStats()
	if hits != 0 || size != 0 {
		t.Fatalf("oversized blob cached: hits=%d size=%d", hits, size)
	}
}

func TestGroupCommitRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	const writers, puts = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if err := tab.Put(key, map[string]string{"w": key}, []byte("blob-"+key)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	writes, syncs := db.WALStats()
	if writes < 1 || syncs < 1 || writes != syncs {
		t.Fatalf("wal stats writes=%d syncs=%d", writes, syncs)
	}
	if writes > int64(writers*puts) {
		t.Fatalf("more WAL writes (%d) than puts (%d)", writes, writers*puts)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re := diskDB(t, dir)
	defer re.Close()
	if got := re.Table("t").Len(); got != writers*puts {
		t.Fatalf("reopened with %d rows, want %d", got, writers*puts)
	}
	r, err := re.Table("t").Get("w3-k7")
	if err != nil || string(r.Blob) != "blob-w3-k7" || r.Meta["w"] != "w3-k7" {
		t.Fatalf("record %+v err %v", r, err)
	}
}

func TestGroupCommitAckImpliesCrashDurability(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	for i := 0; i < 10; i++ {
		if err := tab.Put(fmt.Sprintf("k%d", i), nil, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: reopen from disk WITHOUT closing. Every
	// acknowledged Put was fsynced before its commit returned, so all ten
	// must replay. (The stock path only guarantees this after Close.)
	crashed := diskDB(t, dir)
	if got := crashed.Table("t").Len(); got != 10 {
		t.Fatalf("crash replay recovered %d rows, want 10", got)
	}
	crashed.Close()
	db.Close()
}

func TestGroupCommitDelete(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tab := db.Table("t")
	if err := tab.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	tab.Put("k", nil, []byte("v"))
	if err := tab.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestGroupCommitSurvivesCompact(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				db.Compact()
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if err := tab.Put(fmt.Sprintf("k%d", i), nil, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re := diskDB(t, dir)
	defer re.Close()
	if got := re.Table("t").Len(); got != 50 {
		t.Fatalf("recovered %d rows, want 50", got)
	}
}

func TestGroupCommitAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Table("t").Put("k", nil, []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestStockWALStatsCountPerPutWrites(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	defer db.Close()
	tab := db.Table("t")
	for i := 0; i < 5; i++ {
		if err := tab.Put(fmt.Sprintf("k%d", i), nil, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	writes, syncs := db.WALStats()
	if writes != 5 || syncs != 0 {
		t.Fatalf("stock wal stats writes=%d syncs=%d, want 5/0", writes, syncs)
	}
}
