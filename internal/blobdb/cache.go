package blobdb

import (
	"container/list"
	"sync"
)

// blobCache is the size-bounded LRU of decompressed blobs sitting in
// front of Table.Get. Entries are keyed by table/key plus the row's
// generation, so any Put or Delete naturally invalidates earlier cached
// inflations — a stale generation never serves. The cache holds (and
// hands out) private copies, so callers remain free to mutate
// Record.Blob, exactly as they can on the decompress path.
//
// A hit skips the modelled disk read and decompress burn as well as the
// real gzip inflate — the Fig. 6 "loading and decompressing the file
// from the database" CPU peak disappears for repeat invocations. The
// cache is off by default (BlobCacheBytes == 0), keeping first-touch
// behaviour paper-faithful.
type blobCache struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key  string
	gen  uint64
	blob []byte
}

func newBlobCache(max int64) *blobCache {
	return &blobCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns a copy of the cached blob if the generation matches.
func (c *blobCache) get(key string, gen uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok || el.Value.(*cacheEntry).gen != gen {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	out := make([]byte, len(e.blob))
	copy(out, e.blob)
	return out, true
}

// put stores a copy of blob under key/gen and evicts from the LRU tail
// until the cache fits its budget. Blobs larger than the whole budget
// are not cached.
func (c *blobCache) put(key string, gen uint64, blob []byte) {
	if int64(len(blob)) > c.max {
		return
	}
	cp := make([]byte, len(blob))
	copy(cp, blob)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.size += int64(len(cp)) - int64(len(e.blob))
		e.gen, e.blob = gen, cp
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, blob: cp})
		c.size += int64(len(cp))
	}
	for c.size > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.size -= int64(len(e.blob))
	}
}

// invalidate drops key's entry (generation matching would catch stale
// reads anyway; this reclaims the memory eagerly).
func (c *blobCache) invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.size -= int64(len(e.blob))
	}
}

// stats snapshots the counters.
func (c *blobCache) stats() (hits, misses, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.size
}
