package blobdb

import (
	"sync"
	"time"
)

// CompactorStats are the background compactor's lifetime totals.
type CompactorStats struct {
	// Runs counts scan sweeps.
	Runs int64 `json:"runs"`
	// Snapshots counts shard snapshot compactions.
	Snapshots int64 `json:"snapshots"`
	// SegmentsRetired counts sealed segments unlinked (both fully-dead
	// retirement and snapshot coverage).
	SegmentsRetired int64 `json:"segments_retired"`
	// RetiredBytes is the on-disk bytes those segments held.
	RetiredBytes int64 `json:"retired_bytes"`
	// SnapshotBytes is the total bytes of snapshots written.
	SnapshotBytes int64 `json:"snapshot_bytes"`
}

// compactor incrementally reclaims WAL garbage under live traffic. Each
// sweep it (a) unlinks sealed segments that are fully dead — free, no
// rewrite — across every shard, and (b) snapshot-compacts at most ONE
// shard, the one with the worst sealed dead-entry ratio past 50%. One
// snapshot rewrite per sweep is the rate limit: the IO the compactor
// injects is bounded and each pause touches one shard's lock only
// briefly (seal + map copy), never the whole store.
type compactor struct {
	db    *DB
	every time.Duration
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once

	mu    sync.Mutex
	stats CompactorStats
}

// compactDeadRatio is the sealed dead-entry fraction above which a shard
// earns a snapshot compaction.
const compactDeadRatio = 0.5

func startCompactor(db *DB, every time.Duration) *compactor {
	c := &compactor{
		db:    db,
		every: every,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go c.run()
	return c
}

// halt stops the compactor, waiting out any in-flight sweep.
func (c *compactor) halt() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

func (c *compactor) run() {
	defer close(c.done)
	t := time.NewTicker(c.every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		c.sweep()
	}
}

func (c *compactor) sweep() {
	var (
		retired      int64
		retiredBytes int64
		worst        = -1
		worstRatio   float64
	)
	for i, s := range c.db.shards {
		n, bytes := s.retireDead()
		retired += int64(n)
		retiredBytes += bytes
		dead, total, sealed := s.sealedGarbage()
		if sealed > 0 && total > 0 {
			if ratio := float64(dead) / float64(total); ratio >= compactDeadRatio && ratio > worstRatio {
				worst, worstRatio = i, ratio
			}
		}
	}
	var out compactOutcome
	if worst >= 0 {
		res, err := c.db.shards[worst].compactSnapshot()
		if err == nil {
			out = res
		}
	}
	c.mu.Lock()
	c.stats.Runs++
	c.stats.SegmentsRetired += retired + int64(out.retiredSegs)
	c.stats.RetiredBytes += retiredBytes + out.retiredBytes
	if out.snapBytes > 0 {
		c.stats.Snapshots++
		c.stats.SnapshotBytes += out.snapBytes
	}
	c.mu.Unlock()
}

func (c *compactor) snapshot() CompactorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
