package blobdb

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
	"repro/internal/vtime"
)

func memDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func diskDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPutGetRoundTrip(t *testing.T) {
	db := memDB(t)
	tab := db.Table("executables")
	blob := bytes.Repeat([]byte("grid job payload "), 1000)
	meta := map[string]string{"owner": "alice", "desc": "demo"}
	if err := tab.Put("exe-1", meta, blob); err != nil {
		t.Fatal(err)
	}
	rec, err := tab.Get("exe-1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Blob, blob) {
		t.Fatal("blob corrupted")
	}
	if rec.Meta["owner"] != "alice" {
		t.Fatalf("meta %v", rec.Meta)
	}
	if rec.CompressedSize <= 0 || rec.CompressedSize >= len(blob) {
		t.Fatalf("compression ineffective: %d of %d", rec.CompressedSize, len(blob))
	}
}

func TestGetMissing(t *testing.T) {
	db := memDB(t)
	if _, err := db.Table("t").Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	db := memDB(t)
	if err := db.Table("t").Put("", nil, nil); !errors.Is(err, ErrBadrecord) {
		t.Fatalf("got %v", err)
	}
	if err := db.Table("t").Put("k", nil, make([]byte, MaxBlobBytes+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestPutReplaces(t *testing.T) {
	db := memDB(t)
	tab := db.Table("t")
	tab.Put("k", nil, []byte("v1"))
	tab.Put("k", nil, []byte("v2"))
	rec, err := tab.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Blob) != "v2" {
		t.Fatalf("blob %q", rec.Blob)
	}
	if tab.Len() != 1 {
		t.Fatalf("len %d", tab.Len())
	}
}

func TestDelete(t *testing.T) {
	db := memDB(t)
	tab := db.Table("t")
	tab.Put("k", nil, []byte("v"))
	if err := tab.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if err := tab.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStatSkipsBlob(t *testing.T) {
	db := memDB(t)
	tab := db.Table("t")
	tab.Put("k", map[string]string{"a": "b"}, []byte("payload"))
	rec, err := tab.Stat("k")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Blob != nil {
		t.Fatal("stat returned blob")
	}
	if rec.Meta["a"] != "b" || rec.CompressedSize == 0 {
		t.Fatalf("stat %+v", rec)
	}
	if _, err := tab.Stat("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestKeysAndTableNames(t *testing.T) {
	db := memDB(t)
	db.Table("b").Put("2", nil, nil)
	db.Table("b").Put("1", nil, nil)
	db.Table("a").Put("x", nil, nil)
	if got := db.Table("b").Keys(); len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("keys %v", got)
	}
	if got := db.TableNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("tables %v", got)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	blob := bytes.Repeat([]byte("x"), 10_000)
	db.Table("exe").Put("k1", map[string]string{"n": "1"}, blob)
	db.Table("exe").Put("k2", nil, []byte("small"))
	db.Table("exe").Delete("k2")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := diskDB(t, dir)
	defer db2.Close()
	rec, err := db2.Table("exe").Get("k1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Blob, blob) || rec.Meta["n"] != "1" {
		t.Fatal("record lost across reopen")
	}
	if _, err := db2.Table("exe").Get("k2"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted record resurrected")
	}
}

func TestCompactAndRecover(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	for i := 0; i < 20; i++ {
		db.Table("t").Put(string(rune('a'+i)), nil, bytes.Repeat([]byte{byte(i)}, 100))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compact writes land in the fresh WAL.
	db.Table("t").Put("post", nil, []byte("after compact"))
	db.Close()

	wal, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if wal.Size() == 0 {
		t.Fatal("post-compact write missing from wal")
	}
	db2 := diskDB(t, dir)
	defer db2.Close()
	if db2.Table("t").Len() != 21 {
		t.Fatalf("recovered %d rows, want 21", db2.Table("t").Len())
	}
	rec, err := db2.Table("t").Get("post")
	if err != nil || string(rec.Blob) != "after compact" {
		t.Fatalf("post-compact record: %v", err)
	}
}

func TestTornWALTailTolerated(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	db.Table("t").Put("good", nil, []byte("v"))
	db.Close()
	// Simulate a crash mid-append: write a partial entry.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0, 0, 1, 0, 'p', 'a', 'r'})
	f.Close()
	db2 := diskDB(t, dir)
	defer db2.Close()
	if _, err := db2.Table("t").Get("good"); err != nil {
		t.Fatalf("good record lost: %v", err)
	}
}

func TestCorruptWALEntryReported(t *testing.T) {
	dir := t.TempDir()
	db := diskDB(t, dir)
	db.Table("t").Put("good", nil, []byte("v"))
	db.Close()
	// Corrupt the middle of the log: valid length, garbage JSON, then the
	// file continues, so this is not a torn tail.
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < len(data)-4; i++ {
		data[i] ^= 0x55
	}
	os.WriteFile(path, data, 0o644)
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v", err)
	}
}

func TestClosedDB(t *testing.T) {
	db := memDB(t)
	db.Close()
	if err := db.Table("t").Put("k", nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if _, err := db.Table("t").Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if _, err := db.Table("t").Stat("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if err := db.Table("t").Delete("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if err := db.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestAccounting(t *testing.T) {
	clk := vtime.NewScaled(10000)
	rec := metrics.NewRecorder(clk, 3*time.Second)
	probe := metrics.NewProbe(rec)
	db, err := Open(Options{Probe: probe, Cost: metrics.Cost{CompressBps: 1 << 20, DecompressBps: 4 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	blob := make([]byte, 1<<20)
	db.Table("t").Put("k", nil, blob) // 1 MiB at 1 MiB/s = ~1s CPU
	if got := time.Duration(rec.Total(metrics.CPU)); got < 800*time.Millisecond {
		t.Fatalf("compression CPU %v", got)
	}
	if rec.Total(metrics.DiskWrite) == 0 {
		t.Fatal("disk write not accounted")
	}
	before := rec.Total(metrics.CPU)
	if _, err := db.Table("t").Get("k"); err != nil {
		t.Fatal(err)
	}
	if rec.Total(metrics.CPU) <= before {
		t.Fatal("decompression CPU not accounted")
	}
	if rec.Total(metrics.DiskRead) == 0 {
		t.Fatal("disk read not accounted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := memDB(t)
	tab := db.Table("t")
	done := make(chan error, 64)
	for i := 0; i < 32; i++ {
		key := string(rune('a' + i%26))
		go func() { done <- tab.Put(key, nil, []byte(key)) }()
		go func() {
			_, err := tab.Get(key)
			if errors.Is(err, ErrNotFound) {
				err = nil // racing with the put is fine
			}
			done <- err
		}()
	}
	for i := 0; i < 64; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Property: store/load identity for arbitrary blobs and metadata.
func TestPropertyStoreLoadIdentity(t *testing.T) {
	db := memDB(t)
	tab := db.Table("p")
	f := func(key string, blob []byte, mk, mv string) bool {
		if key == "" {
			key = "k"
		}
		if err := tab.Put(key, map[string]string{mk: mv}, blob); err != nil {
			return false
		}
		rec, err := tab.Get(key)
		if err != nil {
			return false
		}
		return bytes.Equal(rec.Blob, blob) && rec.Meta[mk] == mv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: persistence identity — everything written before Close is
// readable after reopen.
func TestPropertyPersistenceIdentity(t *testing.T) {
	f := func(blobs [][]byte) bool {
		if len(blobs) > 8 {
			blobs = blobs[:8]
		}
		dir, err := os.MkdirTemp("", "blobdb-prop-*")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		db, err := Open(Options{Dir: dir})
		if err != nil {
			return false
		}
		for i, b := range blobs {
			if err := db.Table("t").Put(key(i), nil, b); err != nil {
				return false
			}
		}
		db.Close()
		db2, err := Open(Options{Dir: dir})
		if err != nil {
			return false
		}
		defer db2.Close()
		for i, b := range blobs {
			rec, err := db2.Table("t").Get(key(i))
			if err != nil || !bytes.Equal(rec.Blob, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func key(i int) string { return "k" + string(rune('0'+i)) }

func TestStoredAtUsesClock(t *testing.T) {
	clk := vtime.NewManual(time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC))
	db, err := Open(Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Table("t").Put("k", nil, nil)
	rec, _ := db.Table("t").Stat("k")
	if !rec.StoredAt.Equal(clk.Now()) {
		t.Fatalf("stored at %v", rec.StoredAt)
	}
}
