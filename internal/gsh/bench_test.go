package gsh

import (
	"io"
	"testing"
	"time"
)

const benchProgram = `# benchmark program
compute 10ms
echo starting ${run}
loop 5
  write out-${run}.dat 1024
  echo wrote chunk
end
emit 1ms 3 tick
echo done
`

func BenchmarkParse(b *testing.B) {
	src := []byte(benchProgram)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParsePadded5MB(b *testing.B) {
	src := Pad([]byte(benchProgram), 5<<20)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRun(b *testing.B) {
	prog, err := Parse([]byte("echo a ${x}\nloop 10\necho b\nend\nwrite f 256\n"))
	if err != nil {
		b.Fatal(err)
	}
	env := &Env{
		Args:      map[string]string{"x": "1"},
		Stdout:    io.Discard,
		CPU:       func(d time.Duration) {},
		WriteFile: func(string, []byte) error { return nil },
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prog.Run(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPad(b *testing.B) {
	src := []byte(benchProgram)
	b.SetBytes(5 << 20)
	for i := 0; i < b.N; i++ {
		Pad(src, 5<<20)
	}
}

func BenchmarkExpand(b *testing.B) {
	args := map[string]string{"a": "1", "b": "2", "c": "3"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Expand("prefix ${a} mid ${b} and ${c} suffix ${missing}", args)
	}
}
