package gsh

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: the parser never panics and either returns a program or an
// error for arbitrary byte soup assembled from plausible tokens.
func TestPropertyParserTotality(t *testing.T) {
	tokens := []string{
		"compute", "sleep", "echo", "write", "emit", "fail", "loop", "end",
		"1s", "500ms", "10", "-3", "out.dat", "${x}", "#", "\n", " ", "24h1m",
		"99999999999999999999", "text with spaces", "\t", "loop 2",
	}
	f := func(picks []uint8) bool {
		var sb strings.Builder
		for i, p := range picks {
			sb.WriteString(tokens[int(p)%len(tokens)])
			if i%3 == 2 {
				sb.WriteByte('\n')
			} else {
				sb.WriteByte(' ')
			}
		}
		// Must not panic; result value is unconstrained.
		prog, err := Parse([]byte(sb.String()))
		if err == nil && prog == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: any program that parses also runs to completion (or fails
// cleanly) under a no-op environment without panicking, within the step
// limit.
func TestPropertyRunTotality(t *testing.T) {
	progs := []string{
		"compute 1ms\n",
		"loop 3\necho a\nend\n",
		"write f 10\nfail x\n",
		"emit 1ms 2 t\necho ${a}${b}\n",
		"loop 2\nloop 2\nwrite ${k}.dat 1\nend\nend\n",
		"# only comments\n\n",
		"",
	}
	f := func(pick uint8, arg string) bool {
		src := progs[int(pick)%len(progs)]
		prog, err := Parse([]byte(src))
		if err != nil {
			return false // all fixtures must parse
		}
		env := &Env{
			Args:      map[string]string{"a": arg, "k": "key"},
			WriteFile: func(string, []byte) error { return nil },
		}
		runErr := prog.Run(env)
		// Only the deliberate fail statement may error.
		if strings.Contains(src, "fail") {
			return runErr != nil
		}
		return runErr == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
