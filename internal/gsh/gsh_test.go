package gsh

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vtime"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

func TestParseBasicStatements(t *testing.T) {
	p := mustParse(t, `
# demo program
compute 500ms
sleep 1s
echo hello world
write out.dat 1024
emit 2s 3 tick
`)
	ops := make([]string, len(p.Stmts))
	for i, s := range p.Stmts {
		ops[i] = s.Op
	}
	want := []string{"compute", "sleep", "echo", "write", "emit"}
	if strings.Join(ops, ",") != strings.Join(want, ",") {
		t.Fatalf("ops %v", ops)
	}
	if p.Stmts[0].Dur != 500*time.Millisecond {
		t.Fatalf("compute dur %v", p.Stmts[0].Dur)
	}
	if p.Stmts[3].Size != 1024 {
		t.Fatalf("write size %d", p.Stmts[3].Size)
	}
	if p.Stmts[4].Interval != 2*time.Second || p.Stmts[4].Count != 3 {
		t.Fatalf("emit %+v", p.Stmts[4])
	}
}

func TestParseLoop(t *testing.T) {
	p := mustParse(t, "loop 3\n  echo x\n  compute 1ms\nend\n")
	if len(p.Stmts) != 1 || p.Stmts[0].Op != "loop" || p.Stmts[0].Count != 3 {
		t.Fatalf("stmts %+v", p.Stmts)
	}
	if len(p.Stmts[0].Body) != 2 {
		t.Fatalf("body %+v", p.Stmts[0].Body)
	}
}

func TestParseNestedLoop(t *testing.T) {
	p := mustParse(t, "loop 2\nloop 3\necho y\nend\nend\n")
	if p.Stmts[0].Body[0].Op != "loop" {
		t.Fatal("nested loop lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"frobnicate":          "unknown statement",
		"compute":             "wants 1 argument",
		"compute banana":      "bad duration",
		"compute -5s":         "bad duration",
		"compute 48h":         "exceeds 24h",
		"write out.dat":       "wants <name> <bytes>",
		"write out.dat -1":    "bad write size",
		"write out.dat 1e9":   "bad write size",
		"emit 1s":             "wants <interval> <count>",
		"emit 1s nope x":      "bad count",
		"loop 5\necho x":      "never closed",
		"end":                 "'end' without 'loop'",
		"loop banana\nend":    "bad count",
		"loop 200000\nend":    "bad count",
		"loop 2\nloop 2\nend": "never closed",
	}
	for src, wantSub := range cases {
		_, err := Parse([]byte(src))
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", src, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", src, err, wantSub)
		}
	}
}

func TestParseDeepNestingRejected(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < MaxLoopDepth+1; i++ {
		sb.WriteString("loop 1\n")
	}
	sb.WriteString("echo x\n")
	for i := 0; i < MaxLoopDepth+1; i++ {
		sb.WriteString("end\n")
	}
	if _, err := Parse([]byte(sb.String())); !errors.Is(err, ErrLimits) {
		t.Fatalf("got %v", err)
	}
}

func TestParseSizeLimit(t *testing.T) {
	big := make([]byte, MaxProgramBytes+1)
	if _, err := Parse(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestRunEchoAndExpansion(t *testing.T) {
	p := mustParse(t, "echo hello ${who} from ${where}\n")
	var out bytes.Buffer
	err := p.Run(&Env{Args: map[string]string{"who": "alice"}, Stdout: &out})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "hello alice from \n" {
		t.Fatalf("stdout %q", got)
	}
}

func TestRunComputeUsesCPUHook(t *testing.T) {
	p := mustParse(t, "compute 3s\ncompute 2s\n")
	var total time.Duration
	err := p.Run(&Env{CPU: func(d time.Duration) { total += d }})
	if err != nil {
		t.Fatal(err)
	}
	if total != 5*time.Second {
		t.Fatalf("cpu hook saw %v", total)
	}
}

func TestRunSleepUsesClock(t *testing.T) {
	p := mustParse(t, "sleep 10s\n")
	clk := vtime.NewScaled(10000)
	start := clk.Now()
	if err := p.Run(&Env{Clock: clk}); err != nil {
		t.Fatal(err)
	}
	if clk.Now().Sub(start) < 9*time.Second {
		t.Fatal("sleep did not advance virtual clock")
	}
}

func TestRunWrite(t *testing.T) {
	p := mustParse(t, "write result-${run}.dat 2048\n")
	files := map[string]int{}
	err := p.Run(&Env{
		Args:      map[string]string{"run": "7"},
		WriteFile: func(name string, data []byte) error { files[name] = len(data); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if files["result-7.dat"] != 2048 {
		t.Fatalf("files %v", files)
	}
}

func TestRunWriteErrorPropagates(t *testing.T) {
	p := mustParse(t, "write x 1\n")
	wantErr := errors.New("disk full")
	err := p.Run(&Env{WriteFile: func(string, []byte) error { return wantErr }})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v", err)
	}
}

func TestRunReadAndProcess(t *testing.T) {
	p := mustParse(t, "read input-${i}.dat\nprocess input-${i}.dat 100\n")
	var out bytes.Buffer
	var cpu time.Duration
	files := map[string][]byte{"input-3.dat": make([]byte, 200<<10)} // 200 KB
	env := &Env{
		Args:   map[string]string{"i": "3"},
		Stdout: &out,
		CPU:    func(d time.Duration) { cpu += d },
		ReadFile: func(name string) ([]byte, error) {
			data, ok := files[name]
			if !ok {
				return nil, errors.New("no such input")
			}
			return data, nil
		},
	}
	if err := p.Run(env); err != nil {
		t.Fatal(err)
	}
	want := "read input-3.dat: 204800 bytes\nprocess input-3.dat: 204800 bytes\n"
	if out.String() != want {
		t.Fatalf("stdout %q", out.String())
	}
	// 200 KB at 100 KB/s = 2s of CPU.
	if cpu != 2*time.Second {
		t.Fatalf("cpu %v, want 2s", cpu)
	}
}

func TestRunReadMissingInput(t *testing.T) {
	p := mustParse(t, "read nope.dat\n")
	err := p.Run(&Env{ReadFile: func(string) ([]byte, error) { return nil, errors.New("gone") }})
	if err == nil || !strings.Contains(err.Error(), "gone") {
		t.Fatalf("got %v", err)
	}
	if err := p.Run(&Env{}); !errors.Is(err, ErrNoInput) {
		t.Fatalf("got %v", err)
	}
}

func TestParseReadProcessErrors(t *testing.T) {
	for src, want := range map[string]string{
		"read":            "wants <name>",
		"read a b":        "wants <name>",
		"process f":       "wants <name> <kb-per-sec>",
		"process f zero":  "bad process rate",
		"process f 0":     "bad process rate",
		"process f -5":    "bad process rate",
		"process f 1 2 3": "wants <name> <kb-per-sec>",
	} {
		if _, err := Parse([]byte(src)); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) err %v, want %q", src, err, want)
		}
	}
}

func TestRunFail(t *testing.T) {
	p := mustParse(t, "fail boom ${code}\n")
	err := p.Run(&Env{Args: map[string]string{"code": "42"}})
	if !errors.Is(err, ErrJobFailed) {
		t.Fatalf("got %v", err)
	}
	if !strings.Contains(err.Error(), "boom 42") {
		t.Fatalf("message lost: %v", err)
	}
}

func TestRunLoop(t *testing.T) {
	p := mustParse(t, "loop 4\necho tick\nend\n")
	var out bytes.Buffer
	if err := p.Run(&Env{Stdout: &out}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "tick"); got != 4 {
		t.Fatalf("loop ran %d times", got)
	}
}

func TestRunEmitPacedOnClock(t *testing.T) {
	p := mustParse(t, "emit 3s 4 out\n")
	clk := vtime.NewScaled(10000)
	var out bytes.Buffer
	start := clk.Now()
	if err := p.Run(&Env{Clock: clk, Stdout: &out}); err != nil {
		t.Fatal(err)
	}
	if elapsed := clk.Now().Sub(start); elapsed < 11*time.Second {
		t.Fatalf("emit finished in %v, want ~12s", elapsed)
	}
	if got := strings.Count(out.String(), "out"); got != 4 {
		t.Fatalf("emitted %d lines", got)
	}
}

func TestRunStepLimit(t *testing.T) {
	// 100k * 100k iterations would exceed MaxSteps quickly.
	p := mustParse(t, "loop 100000\nloop 100000\necho x\nend\nend\n")
	err := p.Run(&Env{Stdout: nil})
	if !errors.Is(err, ErrLimits) {
		t.Fatalf("got %v", err)
	}
}

func TestTotalDuration(t *testing.T) {
	p := mustParse(t, "compute 2s\nsleep 1s\nemit 1s 3 x\nloop 2\ncompute 500ms\nend\n")
	want := 2*time.Second + time.Second + 3*time.Second + time.Second
	if got := p.TotalDuration(); got != want {
		t.Fatalf("duration %v, want %v", got, want)
	}
}

func TestExpand(t *testing.T) {
	args := map[string]string{"a": "1", "b": "2"}
	cases := map[string]string{
		"plain":        "plain",
		"${a}":         "1",
		"${a}+${b}":    "1+2",
		"${missing}x":  "x",
		"${unclosed":   "${unclosed",
		"pre${a}post":  "pre1post",
		"${a}${b}${a}": "121",
	}
	for in, want := range cases {
		if got := Expand(in, args); got != want {
			t.Errorf("Expand(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPadProducesValidProgramOfSize(t *testing.T) {
	src := []byte("compute 1s\necho done\n")
	padded := Pad(src, 100_000)
	if len(padded) < 100_000 {
		t.Fatalf("padded to %d bytes", len(padded))
	}
	p, err := Parse(padded)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stmts) != 2 {
		t.Fatalf("padding changed semantics: %d stmts", len(p.Stmts))
	}
}

func TestPadNoopWhenAlreadyBigEnough(t *testing.T) {
	src := []byte("echo x\n")
	if got := Pad(src, 3); len(got) != len(src) {
		t.Fatal("pad grew an already-large program")
	}
}

// Property: parsing the same source twice yields the same statement
// structure, and padding never alters it.
func TestPropertyPadPreservesSemantics(t *testing.T) {
	f := func(computeMs uint16, loops uint8, extra uint16) bool {
		src := []byte(
			"compute " + (time.Duration(computeMs%5000) * time.Millisecond).String() + "\n" +
				"loop " + strconv.Itoa(int(loops%50)) + "\necho x\nend\n")
		p1, err := Parse(src)
		if err != nil {
			return false
		}
		p2, err := Parse(Pad(src, len(src)+int(extra)))
		if err != nil {
			return false
		}
		return len(p1.Stmts) == len(p2.Stmts) && p1.TotalDuration() == p2.TotalDuration()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
