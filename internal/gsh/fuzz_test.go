package gsh

import (
	"testing"
	"time"
)

// instantClock makes sleep/emit statements free so fuzzed programs run
// in microseconds instead of real time.
type instantClock struct{ now time.Time }

func (c *instantClock) Now() time.Time        { return c.now }
func (c *instantClock) Sleep(d time.Duration) { c.now = c.now.Add(d) }
func (c *instantClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.now = c.now.Add(d)
	ch <- c.now
	return ch
}

func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"echo hello\n",
		"compute 1s\nsleep 2s\n",
		"loop 3\necho x\nend\n",
		"loop 3\nloop 2\nwrite f 10\nend\nend\n",
		"emit 1s 5 tick tock\n",
		"fail with a message\n",
		"# comment only\n",
		"write ${name}.dat 4096\n",
		"compute -1s\n",
		"loop\nend\n",
		"end\n",
		"loop 999999999999\nend\n",
		"compute 99999h\n",
		"\x00\x01\x02",
		"echo \xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// Anything that parses must also report a non-negative duration
		// and survive a dry run under a no-op environment.
		if prog.TotalDuration() < 0 {
			t.Fatalf("negative duration for %q", src)
		}
		env := &Env{
			Clock:     &instantClock{},
			CPU:       func(time.Duration) {},
			WriteFile: func(string, []byte) error { return nil },
		}
		// Bound runaway programs with the interpreter's own step limit;
		// Run must return, not panic.
		_ = prog.Run(env)
	})
}
