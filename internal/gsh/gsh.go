// Package gsh defines the grid-shell task language used as the portable
// "executable" format of this reproduction. The paper's users upload
// native binaries that TeraGrid nodes run; shipping native binaries is not
// reproducible, so uploaded executables here are small gsh programs that
// grid worker nodes interpret. A gsh program exercises the same observable
// behaviours as the paper's jobs: it burns CPU, writes output files,
// emits stdout periodically (which the onServe client polls tentatively,
// reproducing the periodic disk-write peaks of Fig. 6), sleeps, and can
// fail.
//
// Grammar (one statement per line, '#' comments, ${name} parameter
// expansion at execution time):
//
//	compute <duration>            burn CPU for the given duration
//	sleep <duration>              idle without CPU use
//	echo <text...>                append a line to stdout
//	write <name> <bytes>          write an output file of the given size
//	read <name>                   read a staged input file; reports its size
//	process <name> <kb-per-sec>   read a staged input and burn CPU
//	                              proportional to its size
//	emit <interval> <count> <text...>
//	                              append text to stdout every interval,
//	                              count times (periodic output)
//	fail <text...>                terminate the job with a failure
//	loop <n>                      repeat the block until matching 'end'
//	end                           close the innermost loop
package gsh

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/vtime"
)

// Limits protecting the interpreter from hostile programs.
const (
	MaxProgramBytes = 64 << 20
	MaxWriteBytes   = 64 << 20
	MaxLoopCount    = 100_000
	MaxLoopDepth    = 8
	MaxSteps        = 10_000_000
)

// Errors.
var (
	ErrTooLarge   = errors.New("gsh: program exceeds size limit")
	ErrSyntax     = errors.New("gsh: syntax error")
	ErrLimits     = errors.New("gsh: program exceeds execution limits")
	ErrJobFailed  = errors.New("gsh: job failed")
	ErrUnbalanced = errors.New("gsh: unbalanced loop/end")
)

// Stmt is one executable statement.
type Stmt struct {
	Op       string // compute, sleep, echo, write, emit, fail, loop
	Dur      time.Duration
	Interval time.Duration
	Count    int64
	Name     string
	Size     int64
	Text     string
	Body     []Stmt // loop body
}

// Program is a parsed gsh program.
type Program struct {
	Stmts []Stmt
	// Source size in bytes, retained so schedulers can reason about the
	// original upload size.
	SourceBytes int
}

// Parse parses src, validating statically checkable limits.
func Parse(src []byte) (*Program, error) {
	if len(src) > MaxProgramBytes {
		return nil, ErrTooLarge
	}
	lines := strings.Split(string(src), "\n")
	stmts, rest, err := parseBlock(lines, 0, 0)
	if err != nil {
		return nil, err
	}
	if rest != len(lines) {
		return nil, fmt.Errorf("%w: 'end' without 'loop' at line %d", ErrUnbalanced, rest+1)
	}
	return &Program{Stmts: stmts, SourceBytes: len(src)}, nil
}

// parseBlock parses statements from line index i until EOF or a matching
// 'end', returning the next unconsumed line index.
func parseBlock(lines []string, i, depth int) ([]Stmt, int, error) {
	var out []Stmt
	for ; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := fields[0]
		args := fields[1:]
		lineNo := i + 1
		switch op {
		case "end":
			if depth == 0 {
				return out, i, nil // caller at depth 0 treats this as error
			}
			return out, i + 1, nil
		case "loop":
			if depth+1 > MaxLoopDepth {
				return nil, 0, fmt.Errorf("%w: loop nesting exceeds %d at line %d", ErrLimits, MaxLoopDepth, lineNo)
			}
			n, err := parseCount(args, lineNo)
			if err != nil {
				return nil, 0, err
			}
			body, next, err := parseBlock(lines, i+1, depth+1)
			if err != nil {
				return nil, 0, err
			}
			if next > len(lines) || (next == len(lines) && !closedByEnd(lines, i+1, next)) {
				return nil, 0, fmt.Errorf("%w: loop at line %d never closed", ErrUnbalanced, lineNo)
			}
			out = append(out, Stmt{Op: "loop", Count: n, Body: body})
			i = next - 1
		case "compute", "sleep":
			if len(args) != 1 {
				return nil, 0, fmt.Errorf("%w: %s wants 1 argument at line %d", ErrSyntax, op, lineNo)
			}
			d, err := parseDur(args[0], lineNo)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, Stmt{Op: op, Dur: d})
		case "echo", "fail":
			out = append(out, Stmt{Op: op, Text: strings.Join(args, " ")})
		case "write":
			if len(args) != 2 {
				return nil, 0, fmt.Errorf("%w: write wants <name> <bytes> at line %d", ErrSyntax, lineNo)
			}
			size, err := strconv.ParseInt(args[1], 10, 64)
			if err != nil || size < 0 || size > MaxWriteBytes {
				return nil, 0, fmt.Errorf("%w: bad write size %q at line %d", ErrSyntax, args[1], lineNo)
			}
			out = append(out, Stmt{Op: "write", Name: args[0], Size: size})
		case "read":
			if len(args) != 1 {
				return nil, 0, fmt.Errorf("%w: read wants <name> at line %d", ErrSyntax, lineNo)
			}
			out = append(out, Stmt{Op: "read", Name: args[0]})
		case "process":
			if len(args) != 2 {
				return nil, 0, fmt.Errorf("%w: process wants <name> <kb-per-sec> at line %d", ErrSyntax, lineNo)
			}
			rate, err := strconv.ParseInt(args[1], 10, 64)
			if err != nil || rate <= 0 {
				return nil, 0, fmt.Errorf("%w: bad process rate %q at line %d", ErrSyntax, args[1], lineNo)
			}
			out = append(out, Stmt{Op: "process", Name: args[0], Size: rate})
		case "emit":
			if len(args) < 3 {
				return nil, 0, fmt.Errorf("%w: emit wants <interval> <count> <text> at line %d", ErrSyntax, lineNo)
			}
			iv, err := parseDur(args[0], lineNo)
			if err != nil {
				return nil, 0, err
			}
			n, err := parseCount(args[1:2], lineNo)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, Stmt{Op: "emit", Interval: iv, Count: n, Text: strings.Join(args[2:], " ")})
		default:
			return nil, 0, fmt.Errorf("%w: unknown statement %q at line %d", ErrSyntax, op, lineNo)
		}
	}
	if depth > 0 {
		return nil, len(lines) + 1, nil // unbalanced, caught by caller
	}
	return out, len(lines), nil
}

func closedByEnd(lines []string, from, next int) bool {
	// parseBlock at depth>0 returns next = index after the 'end' line; if
	// it ran off the end of input it returns len(lines)+1, handled by the
	// caller through the next > len(lines) check. Reaching exactly
	// len(lines) means the last line was the 'end'.
	for j := next - 1; j >= from; j-- {
		l := strings.TrimSpace(lines[j])
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		return l == "end"
	}
	return false
}

func parseDur(s string, line int) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("%w: bad duration %q at line %d", ErrSyntax, s, line)
	}
	if d > 24*time.Hour {
		return 0, fmt.Errorf("%w: duration %v exceeds 24h at line %d", ErrLimits, d, line)
	}
	return d, nil
}

func parseCount(args []string, line int) (int64, error) {
	if len(args) < 1 {
		return 0, fmt.Errorf("%w: missing count at line %d", ErrSyntax, line)
	}
	n, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil || n < 0 || n > MaxLoopCount {
		return 0, fmt.Errorf("%w: bad count %q at line %d", ErrSyntax, args[0], line)
	}
	return n, nil
}

// Env provides the execution environment a worker node exposes to a job.
type Env struct {
	// Args are the invocation parameters substituted into ${name}.
	Args map[string]string
	// Stdout receives echo/emit output.
	Stdout io.Writer
	// Clock paces sleep/emit. Nil means real time.
	Clock vtime.Clock
	// CPU is invoked for compute statements; the worker wires this to its
	// CPU model. Nil falls back to Clock.Sleep.
	CPU func(d time.Duration)
	// WriteFile persists an output artifact. Nil discards writes.
	WriteFile func(name string, data []byte) error
	// ReadFile loads a staged input file (read/process statements). Nil
	// makes every read fail, as on a node with no staging area.
	ReadFile func(name string) ([]byte, error)
	// Done, when non-nil and closed, cancels execution at the next
	// statement boundary (walltime limits, job cancellation).
	Done <-chan struct{}
}

// ErrCancelled reports that execution was stopped through Env.Done.
var ErrCancelled = errors.New("gsh: execution cancelled")

// ErrNoInput reports a read/process statement on a node without staging.
var ErrNoInput = errors.New("gsh: no staged input available")

func (e *Env) cancelled() bool {
	if e.Done == nil {
		return false
	}
	select {
	case <-e.Done:
		return true
	default:
		return false
	}
}

func (e *Env) clock() vtime.Clock {
	if e.Clock == nil {
		return vtime.Real{}
	}
	return e.Clock
}

// Run executes the program. It returns ErrJobFailed (wrapped with the
// program's message) when a fail statement executes.
func (p *Program) Run(env *Env) error {
	steps := 0
	return runBlock(p.Stmts, env, &steps)
}

func runBlock(stmts []Stmt, env *Env, steps *int) error {
	for i := range stmts {
		if *steps++; *steps > MaxSteps {
			return fmt.Errorf("%w: more than %d steps", ErrLimits, MaxSteps)
		}
		if env.cancelled() {
			return ErrCancelled
		}
		s := &stmts[i]
		switch s.Op {
		case "compute":
			if env.CPU != nil {
				env.CPU(s.Dur)
			} else {
				env.clock().Sleep(s.Dur)
			}
		case "sleep":
			env.clock().Sleep(s.Dur)
		case "echo":
			if env.Stdout != nil {
				fmt.Fprintln(env.Stdout, Expand(s.Text, env.Args))
			}
		case "write":
			if env.WriteFile != nil {
				name := Expand(s.Name, env.Args)
				if err := env.WriteFile(name, make([]byte, s.Size)); err != nil {
					return fmt.Errorf("gsh: write %s: %w", name, err)
				}
			}
		case "read", "process":
			name := Expand(s.Name, env.Args)
			if env.ReadFile == nil {
				return fmt.Errorf("gsh: read %s: %w", name, ErrNoInput)
			}
			data, err := env.ReadFile(name)
			if err != nil {
				return fmt.Errorf("gsh: read %s: %w", name, err)
			}
			if s.Op == "process" {
				// Size/rate of CPU-bound work; rate is KB per second.
				d := time.Duration(float64(len(data)) / float64(s.Size<<10) * float64(time.Second))
				if env.CPU != nil {
					env.CPU(d)
				} else {
					env.clock().Sleep(d)
				}
			}
			if env.Stdout != nil {
				fmt.Fprintf(env.Stdout, "%s %s: %d bytes\n", s.Op, name, len(data))
			}
		case "emit":
			text := Expand(s.Text, env.Args)
			for n := int64(0); n < s.Count; n++ {
				env.clock().Sleep(s.Interval)
				if env.cancelled() {
					return ErrCancelled
				}
				if env.Stdout != nil {
					fmt.Fprintln(env.Stdout, text)
				}
			}
		case "fail":
			return fmt.Errorf("%w: %s", ErrJobFailed, Expand(s.Text, env.Args))
		case "loop":
			for n := int64(0); n < s.Count; n++ {
				if err := runBlock(s.Body, env, steps); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Expand substitutes ${name} with args[name]; unknown names expand empty.
func Expand(s string, args map[string]string) string {
	if !strings.Contains(s, "${") {
		return s
	}
	var sb strings.Builder
	for {
		i := strings.Index(s, "${")
		if i < 0 {
			sb.WriteString(s)
			return sb.String()
		}
		j := strings.Index(s[i:], "}")
		if j < 0 {
			sb.WriteString(s)
			return sb.String()
		}
		sb.WriteString(s[:i])
		sb.WriteString(args[s[i+2:i+j]])
		s = s[i+j+1:]
	}
}

// TotalDuration estimates the program's virtual runtime (compute + sleep +
// emit waits), used by schedulers for walltime hints. Loops multiply.
func (p *Program) TotalDuration() time.Duration {
	return blockDuration(p.Stmts)
}

func blockDuration(stmts []Stmt) time.Duration {
	var d time.Duration
	for i := range stmts {
		s := &stmts[i]
		switch s.Op {
		case "compute", "sleep":
			d += s.Dur
		case "emit":
			d += time.Duration(s.Count) * s.Interval
		case "loop":
			d += time.Duration(s.Count) * blockDuration(s.Body)
		}
	}
	return d
}

// Pad returns src extended with comment lines until it is at least size
// bytes, while remaining a valid program. The figure experiments use this
// to build the paper's "~5MB" executable whose content is irrelevant but
// whose transfer and storage costs are the point. Padding is filled from
// a deterministic PRNG rendered as base64-ish text so it is essentially
// incompressible — a real user binary, not a run of identical bytes that
// gzip would fold away in the blob database.
func Pad(src []byte, size int) []byte {
	if len(src) >= size {
		return src
	}
	out := make([]byte, 0, size+80)
	out = append(out, src...)
	if len(out) > 0 && out[len(out)-1] != '\n' {
		out = append(out, '\n')
	}
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	state := uint64(0x9E3779B97F4A7C15)
	line := make([]byte, 0, 66)
	for len(out) < size {
		line = append(line[:0], '#')
		for i := 0; i < 64; i++ {
			// xorshift64*: cheap, deterministic, passes as noise to gzip.
			state ^= state >> 12
			state ^= state << 25
			state ^= state >> 27
			line = append(line, alphabet[(state*0x2545F4914F6CDD1D)>>58])
		}
		line = append(line, '\n')
		out = append(out, line...)
	}
	return out
}
