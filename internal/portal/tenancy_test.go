package portal

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"strings"
	"testing"

	"repro/internal/tenant"
	"repro/internal/trace"
)

// newTenantFixture is newFixture with the multi-tenant control plane
// enforcing cfg at the portal edge.
func newTenantFixture(t *testing.T, cfg tenant.Config) *fixture {
	t.Helper()
	f := newFixture(t)
	ctl, err := tenant.NewController(cfg, tenant.Options{
		Clock:  f.clock,
		Tracer: trace.NewTracer("tenant", f.clock, trace.NewCollector(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.onserve.SetTenancy(ctl)
	return f
}

func twoTenantConfig() tenant.Config {
	return tenant.Config{
		Owners: []tenant.OwnerConfig{
			{Name: "acme", Weight: 2, MaxInFlight: 4},
			{Name: "probe", Weight: 1, MaxInFlight: 2,
				Policy: tenant.Policy{Allow: []tenant.Rule{{Verbs: []string{"invoke"}}}}},
		},
		Keys: []tenant.KeyConfig{
			{Key: "acme-secret", Owner: "acme"},
			{Key: "probe-secret", Owner: "probe"},
		},
		Limits: tenant.LimitsConfig{MaxInFlight: 8},
	}
}

func (f *fixture) do(t *testing.T, method, path, key, contentType string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, f.url+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if key != "" {
		req.Header.Set(tenant.KeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func (f *fixture) uploadKeyed(t *testing.T, filename, key string) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", filename)
	io.WriteString(fw, "compute 1s\necho ok\n")
	mw.WriteField("user", "alice")
	mw.WriteField("description", "tenancy test")
	mw.Close()
	return f.do(t, http.MethodPost, "/upload", key, mw.FormDataContentType(), buf.Bytes())
}

func (f *fixture) invokeKeyed(t *testing.T, service, key string) (*http.Response, []byte) {
	t.Helper()
	payload, _ := json.Marshal(map[string]any{"service": service, "args": map[string]string{"x": "1"}})
	return f.do(t, http.MethodPost, "/api/invoke", key, "application/json", payload)
}

// TestTenancyOffWireGolden pins the stock wire contract with the knob
// off: /api/audit is indistinguishable from an unknown path, /api/stats
// carries no tenant block, and the JSON error envelope (the one
// deliberate change to stock error bodies) is byte-exact.
func TestTenancyOffWireGolden(t *testing.T) {
	f := newFixture(t)

	// /api/audit must be byte-identical to the mux fall-through 404.
	resp, body := f.do(t, http.MethodGet, "/api/audit", "", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("audit status %d, want 404", resp.StatusCode)
	}
	if string(body) != "404 page not found\n" {
		t.Fatalf("audit body %q, want the stock NotFound page", body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("audit content type %q", ct)
	}

	// No tenant key leaks into stats when the knob is off.
	resp, body = f.do(t, http.MethodGet, "/api/stats", "", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats map[string]json.RawMessage
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["tenant"]; ok {
		t.Fatal("stats carries a tenant block with tenancy off")
	}

	// The JSON error envelope is byte-exact and machine-readable.
	resp, body = f.do(t, http.MethodGet, "/api/invoke", "", "", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("invoke GET status %d, want 405", resp.StatusCode)
	}
	if want := "{\"code\":\"method_not_allowed\",\"error\":\"POST only\"}\n"; string(body) != want {
		t.Fatalf("envelope %q, want %q", body, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("envelope content type %q", ct)
	}

	// A keyed request against a tenancy-off portal is served exactly like
	// an anonymous one: the header is ignored, not rejected.
	resp, _ = f.uploadKeyed(t, "anon.gsh", "some-ignored-key")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyed upload with tenancy off: status %d", resp.StatusCode)
	}
}

// TestTenancyAdmissionPipeline walks the admission pipeline end to end:
// no key -> 401, wrong verb for the owner's policy -> 403, rate bucket
// empty -> 429, happy path -> 200 with the action audited exactly once.
func TestTenancyAdmissionPipeline(t *testing.T) {
	f := newTenantFixture(t, twoTenantConfig())

	// Unauthenticated upload and invoke bounce with the envelope.
	resp, body := f.uploadKeyed(t, "denied.gsh", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous upload status %d, want 401", resp.StatusCode)
	}
	var env map[string]string
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env["code"] != "unauthorized" {
		t.Fatalf("envelope code %q", env["code"])
	}

	// acme may publish.
	resp, body = f.uploadKeyed(t, "tenantjob.gsh", "acme-secret")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acme upload status %d: %s", resp.StatusCode, body)
	}

	// probe's policy allows invoke only: publishing is forbidden.
	resp, body = f.uploadKeyed(t, "sneaky.gsh", "probe-secret")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("probe upload status %d, want 403: %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &env)
	if env["code"] != "forbidden" {
		t.Fatalf("envelope code %q", env["code"])
	}

	// Both tenants may invoke.
	resp, body = f.invokeKeyed(t, "TenantjobService", "acme-secret")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acme invoke status %d: %s", resp.StatusCode, body)
	}
	resp, body = f.invokeKeyed(t, "TenantjobService", "probe-secret")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe invoke status %d: %s", resp.StatusCode, body)
	}

	// The books: one denied upload under unknown, one forbidden upload,
	// one ok upload, two ok invokes — each exactly once.
	resp, body = f.do(t, http.MethodGet, "/api/audit?n=100", "", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit status %d", resp.StatusCode)
	}
	var audit struct {
		Records []tenant.Record `json:"records"`
		Dropped uint64          `json:"dropped"`
	}
	if err := json.Unmarshal(body, &audit); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, rec := range audit.Records {
		counts[rec.Owner+"/"+rec.Verb+"/"+rec.Outcome]++
		if rec.TraceID == "" {
			t.Fatalf("record %+v has no trace ID", rec)
		}
	}
	want := map[string]int{
		"unknown/upload/denied": 1,
		"probe/upload/denied":   1,
		"acme/upload/ok":        1,
		"acme/invoke/ok":        1,
		"probe/invoke/ok":       1,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("audit count %s = %d, want %d (all: %v)", k, counts[k], n, counts)
		}
	}
	if audit.Dropped != 0 {
		t.Fatalf("audit dropped %d", audit.Dropped)
	}

	// Stats surface the per-owner counters.
	resp, body = f.do(t, http.MethodGet, "/api/stats", "", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var stats struct {
		Tenant *tenant.Stats `json:"tenant"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Tenant == nil {
		t.Fatal("stats missing tenant block with tenancy on")
	}
	if stats.Tenant.Admitted != 3 || stats.Tenant.Denied != 2 {
		t.Fatalf("tenant stats admitted=%d denied=%d, want 3/2", stats.Tenant.Admitted, stats.Tenant.Denied)
	}
	if stats.Tenant.Owners["acme"].Admitted != 2 {
		t.Fatalf("acme admitted %d, want 2", stats.Tenant.Owners["acme"].Admitted)
	}
}

// TestTenancyRateLimit drains a one-token invoke bucket and checks the
// shed is a 429 with the rate_limited code (not quota_exceeded).
func TestTenancyRateLimit(t *testing.T) {
	cfg := tenant.Config{
		Owners: []tenant.OwnerConfig{{
			Name:  "meter",
			Rates: map[string]float64{"invoke": 0.000001}, Bursts: map[string]float64{"invoke": 1},
		}},
		Keys: []tenant.KeyConfig{{Key: "meter-secret", Owner: "meter"}},
	}
	f := newTenantFixture(t, cfg)
	resp, body := f.uploadKeyed(t, "meterjob.gsh", "meter-secret")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	resp, body = f.invokeKeyed(t, "MeterjobService", "meter-secret")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first invoke status %d: %s", resp.StatusCode, body)
	}
	resp, body = f.invokeKeyed(t, "MeterjobService", "meter-secret")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second invoke status %d, want 429: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "\"code\":\"rate_limited\"") {
		t.Fatalf("envelope %s, want rate_limited", body)
	}
}
