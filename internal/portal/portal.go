// Package portal implements the Cyberaide onServe web portal: the
// extended Cyberaide portal of the paper with its "Upload file and
// generate Web Service" dialog (Fig. 3). A browser form (or the JSON API
// the CLI uses) uploads an executable with a description and parameter
// declarations; the portal hands it to the onServe core, which stores it,
// generates the Web service, and publishes it.
package portal

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/uddi"
	"repro/internal/wsclient"
	"repro/internal/wsdl"
)

// MaxUploadBytes bounds one uploaded executable.
const MaxUploadBytes = 256 << 20

// Portal serves the UI and JSON API on top of an OnServe instance.
type Portal struct {
	onserve  *core.OnServe
	registry *uddi.Registry
	probe    *metrics.Probe
	cost     metrics.Cost
	mux      *http.ServeMux
}

// New builds a portal for ons. registry enables the /registry browser
// page (the UDDI inspection tool the paper notes its solution lacks);
// probe may be nil.
func New(ons *core.OnServe, registry *uddi.Registry, probe *metrics.Probe, cost metrics.Cost) *Portal {
	p := &Portal{onserve: ons, registry: registry, probe: probe, cost: cost}
	mux := http.NewServeMux()
	mux.HandleFunc("/", p.home)
	mux.HandleFunc("/upload", p.upload)
	mux.HandleFunc("/registry", p.registryPage)
	mux.HandleFunc("/api/stats", p.apiStats)
	mux.HandleFunc("/api/services", p.apiServices)
	mux.HandleFunc("/api/service", p.apiService)
	mux.HandleFunc("/api/client", p.apiClient)
	mux.HandleFunc("/api/invoke", p.apiInvoke)
	mux.HandleFunc("/api/status", p.apiStatus)
	mux.HandleFunc("/api/output", p.apiOutput)
	mux.HandleFunc("/api/outfile", p.apiOutputFile)
	mux.HandleFunc("/api/wait", p.apiWait)
	mux.HandleFunc("/api/cancel", p.apiCancel)
	mux.HandleFunc("/api/delete", p.apiDelete)
	p.mux = mux
	return p
}

// ServeHTTP implements http.Handler.
func (p *Portal) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mux.ServeHTTP(w, r)
}

var homeTmpl = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>Cyberaide onServe</title></head>
<body>
<h1>Cyberaide onServe</h1>
<p>Software as a Service on Production Grids.</p>
<h2>File upload and Web Service generation</h2>
<form action="/upload" method="post" enctype="multipart/form-data">
  <p>Choose file to upload: <input type="file" name="file"></p>
  <p>User: <input type="text" name="user"></p>
  <p>Description: <input type="text" name="description"></p>
  <p>Parameter-Name 1 <input type="text" name="paramName1">
     Parameter-Type 1 <input type="text" name="paramType1"></p>
  <p>Parameter-Name 2 <input type="text" name="paramName2">
     Parameter-Type 2 <input type="text" name="paramType2"></p>
  <p>Parameter-Name 3 <input type="text" name="paramName3">
     Parameter-Type 3 <input type="text" name="paramType3"></p>
  <p><input type="submit" value="Upload file and generate WebService"></p>
</form>
<h2>Generated services</h2>
<ul>
{{range .}}<li><a href="{{.WSDLURL}}">{{.ServiceName}}</a> — {{.Description}} (owner {{.Owner}})</li>
{{end}}</ul>
</body></html>
`))

func (p *Portal) home(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	services, err := p.onserve.Services()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	homeTmpl.Execute(w, services)
}

// upload is the paper's "Upload file and generate Web Service" action:
// the form's information is passed through, the file lands on the portal
// server, and the onServe function generates and publishes the service.
func (p *Portal) upload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	p.probe.Burn(p.cost.RequestHandling)
	if err := r.ParseMultipartForm(32 << 20); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("portal: parse form: %w", err))
		return
	}
	file, hdr, err := r.FormFile("file")
	if err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("portal: missing file: %w", err))
		return
	}
	defer file.Close()
	content, err := io.ReadAll(io.LimitReader(file, MaxUploadBytes+1))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if len(content) > MaxUploadBytes {
		jsonError(w, http.StatusRequestEntityTooLarge, errors.New("portal: file too large"))
		return
	}
	// Reception CPU (Fig. 8): proportional to the upload size.
	p.probe.BurnFor(len(content), p.cost.ReceiveBps)

	user := r.FormValue("user")
	description := r.FormValue("description")
	var params []wsdl.ParamDef
	for i := 1; ; i++ {
		name := strings.TrimSpace(r.FormValue("paramName" + strconv.Itoa(i)))
		typ := strings.TrimSpace(r.FormValue("paramType" + strconv.Itoa(i)))
		if name == "" && typ == "" {
			if i > 3 { // the form always posts three rows; APIs may post more
				break
			}
			continue
		}
		if name == "" {
			break
		}
		if typ == "" {
			typ = wsdl.TypeString
		}
		params = append(params, wsdl.ParamDef{Name: name, Type: typ})
	}

	rec, err := p.onserve.UploadAndGenerate(user, hdr.Filename, description, params, content)
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	// Optional comma-separated stage-in declaration: input files the
	// owner stages to the Grid out of band.
	if stageIn := strings.TrimSpace(r.FormValue("stageIn")); stageIn != "" {
		var files []string
		for _, f := range strings.Split(stageIn, ",") {
			if f = strings.TrimSpace(f); f != "" {
				files = append(files, f)
			}
		}
		if err := p.onserve.SetStageIn(rec.Name, files); err != nil {
			jsonError(w, statusFor(err), err)
			return
		}
	}
	writeJSON(w, http.StatusOK, rec)
}

var registryTmpl = template.Must(template.New("registry").Parse(`<!DOCTYPE html>
<html><head><title>UDDI registry</title></head>
<body>
<h1>UDDI registry</h1>
<p>{{len .}} published service(s). Pattern filtering: append ?pattern=Monte%25</p>
<table border="1" cellpadding="4">
<tr><th>name</th><th>key</th><th>owner</th><th>endpoint</th><th>WSDL</th><th>published</th></tr>
{{range .}}<tr>
  <td>{{.Name}}</td><td>{{.Key}}</td><td>{{.Owner}}</td>
  <td><a href="{{.Endpoint}}">{{.Endpoint}}</a></td>
  <td><a href="{{.WSDLURL}}">wsdl</a></td>
  <td>{{.PublishedAt.Format "2006-01-02 15:04:05"}}</td>
</tr>
{{end}}</table>
</body></html>
`))

// registryPage is the UDDI browser the paper's solution lacked: "the
// user has to do so by using external tools as the presented solution
// doesn't come with a tool to examine UDDI registries" (§VIII-D4).
func (p *Portal) registryPage(w http.ResponseWriter, r *http.Request) {
	if p.registry == nil {
		http.Error(w, "registry browsing not enabled", http.StatusNotFound)
		return
	}
	recs := p.registry.Find(r.URL.Query().Get("pattern"))
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	registryTmpl.Execute(w, recs)
}

// apiClient serves a ready-to-edit Go client stub for a generated
// service — the paper's suggested improvement over making every consumer
// run wsimport themselves.
func (p *Portal) apiClient(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	info, err := p.onserve.ServiceInfo(name)
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	proxy, err := wsclient.ImportURL(info.Endpoint, nil)
	if err != nil {
		jsonError(w, http.StatusBadGateway, err)
		return
	}
	stub, err := wsclient.GenerateStub(proxy.Def)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/x-go; charset=utf-8")
	w.Header().Set("Content-Disposition", "attachment; filename=\""+name+"_client.go\"")
	w.Write(stub)
}

func (p *Portal) apiOutputFile(w http.ResponseWriter, r *http.Request) {
	data, err := p.onserve.InvocationOutputFile(
		r.URL.Query().Get("ticket"), r.URL.Query().Get("name"))
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// apiStats serves the monitoring snapshot.
func (p *Portal) apiStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, p.onserve.Monitoring())
}

func (p *Portal) apiServices(w http.ResponseWriter, r *http.Request) {
	services, err := p.onserve.Services()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, services)
}

func (p *Portal) apiService(w http.ResponseWriter, r *http.Request) {
	info, err := p.onserve.ServiceInfo(r.URL.Query().Get("name"))
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (p *Portal) apiInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	p.probe.Burn(p.cost.RequestHandling)
	var req struct {
		Service string            `json:"service"`
		Args    map[string]string `json:"args"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	inv, err := p.onserve.Invoke(req.Service, req.Args)
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"ticket": inv.Ticket, "job_id": inv.JobID, "site": inv.Site})
}

func (p *Portal) withInvocation(w http.ResponseWriter, r *http.Request, fn func(*core.Invocation)) {
	inv, err := p.onserve.Invocation(r.URL.Query().Get("ticket"))
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	fn(inv)
}

func (p *Portal) apiStatus(w http.ResponseWriter, r *http.Request) {
	p.withInvocation(w, r, func(inv *core.Invocation) {
		s, err := inv.StatusJSON()
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, s)
	})
}

func (p *Portal) apiOutput(w http.ResponseWriter, r *http.Request) {
	p.withInvocation(w, r, func(inv *core.Invocation) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, inv.Output())
	})
}

func (p *Portal) apiWait(w http.ResponseWriter, r *http.Request) {
	p.withInvocation(w, r, func(inv *core.Invocation) {
		<-inv.DoneChan()
		writeJSON(w, http.StatusOK, map[string]string{
			"state":   string(inv.State()),
			"message": inv.Message(),
			"output":  inv.Output(),
		})
	})
}

func (p *Portal) apiCancel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	p.withInvocation(w, r, func(inv *core.Invocation) {
		if err := p.onserve.CancelInvocation(inv.Ticket); err != nil {
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": "cancelling"})
	})
}

func (p *Portal) apiDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("name")
	if err := p.onserve.DeleteService(name); err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrNoSuchService), errors.Is(err, core.ErrNoTicket):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadName), errors.Is(err, core.ErrBadProgram),
		errors.Is(err, core.ErrNoSuchUser):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func jsonError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
