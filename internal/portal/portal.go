// Package portal implements the Cyberaide onServe web portal: the
// extended Cyberaide portal of the paper with its "Upload file and
// generate Web Service" dialog (Fig. 3). A browser form (or the JSON API
// the CLI uses) uploads an executable with a description and parameter
// declarations; the portal hands it to the onServe core, which stores it,
// generates the Web service, and publishes it.
package portal

import (
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/uddi"
	"repro/internal/wsclient"
	"repro/internal/wsdl"
)

// MaxUploadBytes bounds one uploaded executable.
const MaxUploadBytes = 256 << 20

// Portal serves the UI and JSON API on top of an OnServe instance.
type Portal struct {
	onserve  *core.OnServe
	registry *uddi.Registry
	probe    *metrics.Probe
	cost     metrics.Cost
	mux      *http.ServeMux
}

// New builds a portal for ons. registry enables the /registry browser
// page (the UDDI inspection tool the paper notes its solution lacks);
// probe may be nil.
func New(ons *core.OnServe, registry *uddi.Registry, probe *metrics.Probe, cost metrics.Cost) *Portal {
	p := &Portal{onserve: ons, registry: registry, probe: probe, cost: cost}
	mux := http.NewServeMux()
	mux.HandleFunc("/", p.home)
	mux.HandleFunc("/upload", p.upload)
	mux.HandleFunc("/registry", p.registryPage)
	mux.HandleFunc("/trace", p.tracePage)
	mux.HandleFunc("/api/stats", p.apiStats)
	mux.HandleFunc("/api/trace", p.apiTrace)
	mux.HandleFunc("/api/trace/", p.apiTrace)
	mux.HandleFunc("/api/services", p.apiServices)
	mux.HandleFunc("/api/registry", p.apiRegistry)
	mux.HandleFunc("/api/service", p.apiService)
	mux.HandleFunc("/api/client", p.apiClient)
	mux.HandleFunc("/api/invoke", p.apiInvoke)
	mux.HandleFunc("/api/status", p.apiStatus)
	mux.HandleFunc("/api/output", p.apiOutput)
	mux.HandleFunc("/api/outfile", p.apiOutputFile)
	mux.HandleFunc("/api/wait", p.apiWait)
	mux.HandleFunc("/api/cancel", p.apiCancel)
	mux.HandleFunc("/api/delete", p.apiDelete)
	mux.HandleFunc("/api/audit", p.apiAudit)
	p.mux = mux
	return p
}

// ServeHTTP implements http.Handler.
func (p *Portal) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mux.ServeHTTP(w, r)
}

var homeTmpl = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>Cyberaide onServe</title></head>
<body>
<h1>Cyberaide onServe</h1>
<p>Software as a Service on Production Grids.</p>
<h2>File upload and Web Service generation</h2>
<form action="/upload" method="post" enctype="multipart/form-data">
  <p>Choose file to upload: <input type="file" name="file"></p>
  <p>User: <input type="text" name="user"></p>
  <p>Description: <input type="text" name="description"></p>
  <p>Parameter-Name 1 <input type="text" name="paramName1">
     Parameter-Type 1 <input type="text" name="paramType1"></p>
  <p>Parameter-Name 2 <input type="text" name="paramName2">
     Parameter-Type 2 <input type="text" name="paramType2"></p>
  <p>Parameter-Name 3 <input type="text" name="paramName3">
     Parameter-Type 3 <input type="text" name="paramType3"></p>
  <p><input type="submit" value="Upload file and generate WebService"></p>
</form>
<h2>Generated services</h2>
<ul>
{{range .}}<li><a href="{{.WSDLURL}}">{{.ServiceName}}</a> — {{.Description}} (owner {{.Owner}})</li>
{{end}}</ul>
</body></html>
`))

func (p *Portal) home(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	services, err := p.onserve.Services()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	homeTmpl.Execute(w, services)
}

// upload is the paper's "Upload file and generate Web Service" action:
// the form's information is passed through, the file lands on the portal
// server, and the onServe function generates and publishes the service.
func (p *Portal) upload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	// The key rides in the header block, so authentication happens
	// before a single body byte is parsed; policy runs later, once the
	// multipart form has yielded the service name.
	pr, ok := p.authenticate(w, tenant.VerbUpload, r)
	if !ok {
		return
	}
	p.probe.Burn(p.cost.RequestHandling)
	if err := r.ParseMultipartForm(32 << 20); err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("portal: parse form: %w", err))
		return
	}
	file, hdr, err := r.FormFile("file")
	if err != nil {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("portal: missing file: %w", err))
		return
	}
	defer file.Close()
	content, err := io.ReadAll(io.LimitReader(file, MaxUploadBytes+1))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if len(content) > MaxUploadBytes {
		jsonError(w, http.StatusRequestEntityTooLarge, errors.New("portal: file too large"))
		return
	}
	// Reception CPU (Fig. 8): proportional to the upload size.
	p.probe.BurnFor(len(content), p.cost.ReceiveBps)

	user := r.FormValue("user")
	description := r.FormValue("description")
	var params []wsdl.ParamDef
	for i := 1; ; i++ {
		name := strings.TrimSpace(r.FormValue("paramName" + strconv.Itoa(i)))
		typ := strings.TrimSpace(r.FormValue("paramType" + strconv.Itoa(i)))
		if name == "" && typ == "" {
			if i > 3 { // the form always posts three rows; APIs may post more
				break
			}
			continue
		}
		if name == "" {
			break
		}
		if typ == "" {
			typ = wsdl.TypeString
		}
		params = append(params, wsdl.ParamDef{Name: name, Type: typ})
	}

	// Malformed trace headers degrade to a fresh root trace, never a
	// rejected upload (parse-before-auth).
	tc, _ := trace.Parse(r.Header.Get(trace.Header))
	// Policy wants the service name the upload will publish as; it is a
	// pure function of the filename, so evaluate it pre-admission. A
	// name the core would reject is admitted under the raw filename and
	// fails downstream exactly as it would without tenancy.
	svcName := hdr.Filename
	if n, err := core.ServiceNameFor(hdr.Filename); err == nil {
		svcName = n
	}
	adm, ok := p.admit(w, pr, tenant.VerbUpload, svcName, tc)
	if !ok {
		return
	}
	rec, err := p.onserve.UploadAndGenerateCtx(user, hdr.Filename, description, params, content, adm.ParentFor(tc))
	if err != nil {
		adm.Finish("", err)
		jsonError(w, statusFor(err), err)
		return
	}
	// Optional comma-separated stage-in declaration: input files the
	// owner stages to the Grid out of band.
	if stageIn := strings.TrimSpace(r.FormValue("stageIn")); stageIn != "" {
		var files []string
		for _, f := range strings.Split(stageIn, ",") {
			if f = strings.TrimSpace(f); f != "" {
				files = append(files, f)
			}
		}
		if err := p.onserve.SetStageIn(rec.Name, files); err != nil {
			adm.Finish("", err)
			jsonError(w, statusFor(err), err)
			return
		}
	}
	adm.Finish("", nil)
	writeJSON(w, http.StatusOK, rec)
}

var registryTmpl = template.Must(template.New("registry").Parse(`<!DOCTYPE html>
<html><head><title>UDDI registry</title></head>
<body>
<h1>UDDI registry</h1>
<p>{{len .}} published service(s). Pattern filtering: append ?pattern=Monte%25</p>
<table border="1" cellpadding="4">
<tr><th>name</th><th>key</th><th>owner</th><th>endpoint</th><th>WSDL</th><th>published</th></tr>
{{range .}}<tr>
  <td>{{.Name}}</td><td>{{.Key}}</td><td>{{.Owner}}</td>
  <td><a href="{{.Endpoint}}">{{.Endpoint}}</a></td>
  <td><a href="{{.WSDLURL}}">wsdl</a></td>
  <td>{{.PublishedAt.Format "2006-01-02 15:04:05"}}</td>
</tr>
{{end}}</table>
</body></html>
`))

// registryPage is the UDDI browser the paper's solution lacked: "the
// user has to do so by using external tools as the presented solution
// doesn't come with a tool to examine UDDI registries" (§VIII-D4).
func (p *Portal) registryPage(w http.ResponseWriter, r *http.Request) {
	if p.registry == nil {
		http.Error(w, "registry browsing not enabled", http.StatusNotFound)
		return
	}
	recs := p.registry.Find(r.URL.Query().Get("pattern"))
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	registryTmpl.Execute(w, recs)
}

// apiRegistry is the machine-readable registry listing, sorted by
// service name (uddi.Registry.Find sorts). Fleet gateways pull it to
// maintain their replicated UDDI views; ?pattern= filters with the
// UDDI '%' wildcard.
func (p *Portal) apiRegistry(w http.ResponseWriter, r *http.Request) {
	if p.registry == nil {
		jsonError(w, http.StatusNotFound, errors.New("portal: no registry"))
		return
	}
	recs := p.registry.Find(r.URL.Query().Get("pattern"))
	if recs == nil {
		recs = []uddi.Record{}
	}
	writeJSON(w, http.StatusOK, recs)
}

var traceTmpl = template.Must(template.New("trace").Parse(`<!DOCTYPE html>
<html><head><title>Trace {{.Ticket}}</title><style>
body { font-family: monospace; }
.row { position: relative; height: 1.4em; }
.bar { position: absolute; background: #8ac; height: 1.1em; min-width: 2px; }
.bar.error { background: #c66; }
.label { position: absolute; left: 0; white-space: nowrap; }
.lane { position: relative; margin-left: 28em; border-left: 1px solid #ccc; }
</style></head>
<body>
<h1>Trace {{.Ticket}}</h1>
<p>{{len .Spans}} span(s), {{printf "%.1f" .TotalMS}} ms total. Lookup: <form action="/trace" style="display:inline"><input name="ticket" value="{{.Ticket}}"><input type="submit" value="view"></form></p>
{{range .Spans}}<div class="row">
  <span class="label">{{.Indent}}{{.Service}}/{{.Name}} {{printf "%.1f" .DurationMS}}ms{{if .Detail}} [{{.Detail}}]{{end}}</span>
  <div class="lane"><div class="bar{{if .Error}} error{{end}}" style="left: {{printf "%.2f" .LeftPct}}%; width: {{printf "%.2f" .WidthPct}}%"></div></div>
</div>
{{end}}
</body></html>
`))

// tracePage renders the invocation's span tree as an HTML waterfall:
// one row per span, indented by tree depth, with a bar positioned on
// the trace's own timeline.
func (p *Portal) tracePage(w http.ResponseWriter, r *http.Request) {
	ticket := r.URL.Query().Get("ticket")
	spans, err := p.onserve.InvocationTrace(ticket)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	type row struct {
		trace.SpanData
		Indent   string
		Detail   string
		Error    bool
		LeftPct  float64
		WidthPct float64
	}
	view := struct {
		Ticket  string
		TotalMS float64
		Spans   []row
	}{Ticket: ticket}
	if len(spans) > 0 {
		t0 := spans[0].Start
		t1 := spans[0].End
		for _, sd := range spans {
			if sd.Start.Before(t0) {
				t0 = sd.Start
			}
			if sd.End.After(t1) {
				t1 = sd.End
			}
		}
		total := t1.Sub(t0)
		view.TotalMS = float64(total) / 1e6
		depths := make(map[string]int, len(spans))
		for _, sd := range spans { // spans are start-sorted, parents first
			d := 0
			if sd.ParentID != "" {
				d = depths[sd.ParentID] + 1
			}
			depths[sd.SpanID] = d
			var details []string
			for _, k := range []string{"site", "bytes", "state", "cache"} {
				if v, ok := sd.Attrs[k]; ok {
					details = append(details, k+"="+v)
				}
			}
			rw := row{
				SpanData: sd,
				Indent:   strings.Repeat("· ", d),
				Detail:   strings.Join(details, " "),
				Error:    sd.Status == "error",
			}
			if total > 0 {
				rw.LeftPct = float64(sd.Start.Sub(t0)) / float64(total) * 100
				rw.WidthPct = float64(sd.End.Sub(sd.Start)) / float64(total) * 100
			}
			view.Spans = append(view.Spans, rw)
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	traceTmpl.Execute(w, view)
}

// apiClient serves a ready-to-edit Go client stub for a generated
// service — the paper's suggested improvement over making every consumer
// run wsimport themselves.
func (p *Portal) apiClient(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	info, err := p.onserve.ServiceInfo(name)
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	proxy, err := wsclient.ImportURL(info.Endpoint, nil)
	if err != nil {
		jsonError(w, http.StatusBadGateway, err)
		return
	}
	stub, err := wsclient.GenerateStub(proxy.Def)
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/x-go; charset=utf-8")
	w.Header().Set("Content-Disposition", "attachment; filename=\""+name+"_client.go\"")
	w.Write(stub)
}

func (p *Portal) apiOutputFile(w http.ResponseWriter, r *http.Request) {
	data, err := p.onserve.InvocationOutputFile(
		r.URL.Query().Get("ticket"), r.URL.Query().Get("name"))
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// statsPayload is the /api/stats document: the monitoring tallies the
// seed portal served (inlined, so existing consumers keep decoding it
// into core.Monitoring), extended with the poll-hub, submit-hub, and
// staging counters of PRs 2-4 and — when tracing is on — the trace
// ring's occupancy.
type statsPayload struct {
	core.Monitoring
	// Collector is the poll-side counters: status RPCs, output fetches
	// and bytes, not-modified skips, poll disk writes.
	Collector core.CollectorStats `json:"collector"`
	// Events is the push-collection path: streams opened, events
	// delivered, reconnects/cursor resumes, fallbacks to polling.
	Events core.EventStats `json:"events"`
	// Submit is the submission front-end: submit RPCs, batched submits,
	// upload counts/retries, coalesced stagings.
	Submit core.SubmitStats `json:"submit"`
	// Stage is the chunked-staging data plane: chunks shipped/deduped,
	// wire vs payload bytes, fallbacks, replications.
	Stage core.StageStats `json:"stage"`
	// Placement is the data-aware placement control plane: possession
	// probes and cache hits, redirected placements, replicator pushes.
	Placement core.PlacementStats `json:"placement"`
	// Trace is the span ring's occupancy (spans, bytes, evictions);
	// omitted while tracing is off.
	Trace *trace.CollectorStats `json:"trace,omitempty"`
	// Tenant is the multi-tenant control plane's admission counters;
	// omitted while tenancy is off, so the stock document's bytes are
	// unchanged.
	Tenant *tenant.Stats `json:"tenant,omitempty"`
}

// apiStats serves the monitoring snapshot.
func (p *Portal) apiStats(w http.ResponseWriter, r *http.Request) {
	payload := statsPayload{
		Monitoring: p.onserve.Monitoring(),
		Collector:  p.onserve.CollectorStats(),
		Events:     p.onserve.EventStats(),
		Submit:     p.onserve.SubmitStats(),
		Stage:      p.onserve.StageStats(),
		Placement:  p.onserve.PlacementStats(),
	}
	if col := p.onserve.Tracer().Collector(); col != nil {
		st := col.Stats()
		payload.Trace = &st
	}
	if ctl := p.onserve.Tenancy(); ctl != nil {
		st := ctl.Stats()
		payload.Tenant = &st
	}
	writeJSON(w, http.StatusOK, payload)
}

// apiTrace exports one invocation's span tree as JSON. The ticket
// rides either in the path (/api/trace/<ticket>) or, for clients that
// prefer the query form the other ticket endpoints use, ?ticket=.
func (p *Portal) apiTrace(w http.ResponseWriter, r *http.Request) {
	ticket := strings.TrimPrefix(r.URL.Path, "/api/trace")
	ticket = strings.TrimPrefix(ticket, "/")
	if ticket == "" {
		ticket = r.URL.Query().Get("ticket")
	}
	spans, err := p.onserve.InvocationTrace(ticket)
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	if spans == nil {
		spans = []trace.SpanData{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"ticket": ticket, "spans": spans})
}

func (p *Portal) apiServices(w http.ResponseWriter, r *http.Request) {
	services, err := p.onserve.Services()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, services)
}

func (p *Portal) apiService(w http.ResponseWriter, r *http.Request) {
	info, err := p.onserve.ServiceInfo(r.URL.Query().Get("name"))
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (p *Portal) apiInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	pr, ok := p.authenticate(w, tenant.VerbInvoke, r)
	if !ok {
		return
	}
	p.probe.Burn(p.cost.RequestHandling)
	var req struct {
		Service string            `json:"service"`
		Args    map[string]string `json:"args"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	tc, _ := trace.Parse(r.Header.Get(trace.Header))
	adm, ok := p.admit(w, pr, tenant.VerbInvoke, req.Service, tc)
	if !ok {
		return
	}
	inv, err := p.onserve.InvokeCtx(req.Service, req.Args, adm.ParentFor(tc))
	if err != nil {
		adm.Release()
		adm.Finish("", err)
		jsonError(w, statusFor(err), err)
		return
	}
	if adm != nil {
		// The fair-share slot covers the invocation's whole grid
		// lifetime, not just the submit: release it when the invocation
		// reaches a terminal state. One goroutine per admitted
		// invocation mirrors the stock poller's cost model.
		go func() {
			<-inv.DoneChan()
			adm.Release()
		}()
	}
	adm.Finish(inv.Ticket, nil)
	writeJSON(w, http.StatusOK, map[string]string{"ticket": inv.Ticket, "job_id": inv.JobID, "site": inv.Site})
}

func (p *Portal) withInvocation(w http.ResponseWriter, r *http.Request, fn func(*core.Invocation)) {
	inv, err := p.onserve.Invocation(r.URL.Query().Get("ticket"))
	if err != nil {
		jsonError(w, statusFor(err), err)
		return
	}
	fn(inv)
}

func (p *Portal) apiStatus(w http.ResponseWriter, r *http.Request) {
	p.withInvocation(w, r, func(inv *core.Invocation) {
		s, err := inv.StatusJSON()
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, s)
	})
}

func (p *Portal) apiOutput(w http.ResponseWriter, r *http.Request) {
	p.withInvocation(w, r, func(inv *core.Invocation) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, inv.Output())
	})
}

func (p *Portal) apiWait(w http.ResponseWriter, r *http.Request) {
	p.withInvocation(w, r, func(inv *core.Invocation) {
		<-inv.DoneChan()
		writeJSON(w, http.StatusOK, map[string]string{
			"state":   string(inv.State()),
			"message": inv.Message(),
			"output":  inv.Output(),
		})
	})
}

func (p *Portal) apiCancel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	pr, ok := p.authenticate(w, tenant.VerbCancel, r)
	if !ok {
		return
	}
	p.withInvocation(w, r, func(inv *core.Invocation) {
		tc, _ := trace.Parse(r.Header.Get(trace.Header))
		adm, ok := p.admit(w, pr, tenant.VerbCancel, inv.Service, tc)
		if !ok {
			return
		}
		err := p.onserve.CancelInvocation(inv.Ticket)
		adm.Finish(inv.Ticket, err)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"state": "cancelling"})
	})
}

func (p *Portal) apiDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	pr, ok := p.authenticate(w, tenant.VerbDelete, r)
	if !ok {
		return
	}
	name := r.URL.Query().Get("name")
	tc, _ := trace.Parse(r.Header.Get(trace.Header))
	adm, ok := p.admit(w, pr, tenant.VerbDelete, name, tc)
	if !ok {
		return
	}
	if err := p.onserve.DeleteService(name); err != nil {
		adm.Finish("", err)
		jsonError(w, statusFor(err), err)
		return
	}
	adm.Finish("", nil)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// apiAudit serves the control plane's audit ring, newest first
// (?owner= filters, ?n= bounds, default 50). With tenancy off the
// path 404s exactly as it did before the subsystem existed.
func (p *Portal) apiAudit(w http.ResponseWriter, r *http.Request) {
	ctl := p.onserve.Tenancy()
	if ctl == nil {
		http.NotFound(w, r)
		return
	}
	n := 50
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	recs := ctl.Audit(r.URL.Query().Get("owner"), n)
	if recs == nil {
		recs = []tenant.Record{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"records": recs, "dropped": ctl.AuditDropped()})
}

// authenticate resolves the X-Grid-Key header to a principal before
// any body read. With tenancy off it admits anonymously and touches
// nothing, keeping the stock wire behaviour byte-identical.
func (p *Portal) authenticate(w http.ResponseWriter, verb tenant.Verb, r *http.Request) (tenant.Principal, bool) {
	ctl := p.onserve.Tenancy()
	if ctl == nil {
		return tenant.Principal{}, true
	}
	pr, err := ctl.Authenticate(r.Header.Get(tenant.KeyHeader), verb)
	if err != nil {
		jsonError(w, http.StatusUnauthorized, err)
		return tenant.Principal{}, false
	}
	return pr, true
}

// admit runs the policy/rate/quota stages. A nil admission with ok ==
// true means tenancy is off; every Admission method is nil-safe, so
// handlers call through without branching.
func (p *Portal) admit(w http.ResponseWriter, pr tenant.Principal, verb tenant.Verb, service string, tc trace.SpanContext) (*tenant.Admission, bool) {
	ctl := p.onserve.Tenancy()
	if ctl == nil {
		return nil, true
	}
	adm, err := ctl.Admit(pr, verb, service, tc)
	if err != nil {
		jsonError(w, statusFor(err), err)
		return nil, false
	}
	return adm, true
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrNoSuchService), errors.Is(err, core.ErrNoTicket):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadName), errors.Is(err, core.ErrBadProgram),
		errors.Is(err, core.ErrNoSuchUser):
		return http.StatusBadRequest
	case errors.Is(err, tenant.ErrUnauthorized):
		return http.StatusUnauthorized
	case errors.Is(err, tenant.ErrForbidden):
		return http.StatusForbidden
	case errors.Is(err, tenant.ErrRateLimited), errors.Is(err, tenant.ErrSaturated):
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// errCode classifies an error for the JSON envelope. Machine-readable
// codes stay stable while error strings evolve; the two 429 classes
// are distinguished so clients can tell "slow down" (rate_limited,
// retry after the bucket refills) from "the appliance is saturated"
// (quota_exceeded, retry after in-flight work drains).
func errCode(status int, err error) string {
	switch {
	case errors.Is(err, tenant.ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, tenant.ErrSaturated):
		return "quota_exceeded"
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestEntityTooLarge:
		return "too_large"
	case http.StatusBadGateway:
		return "bad_gateway"
	default:
		return "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// jsonError writes the API error envelope {"error":..., "code":...}.
// HTML pages (/, /registry, /trace) keep their plain responses; every
// /api/* and /upload error speaks this envelope, and the fleet
// gateway passes it through verbatim.
func jsonError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error(), "code": errCode(status, err)})
}
