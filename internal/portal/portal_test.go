package portal

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/blobdb"
	"repro/internal/core"
	"repro/internal/cyberaide"
	"repro/internal/gridenv"
	"repro/internal/gridsim"
	"repro/internal/metrics"
	"repro/internal/soap"
	"repro/internal/trace"
	"repro/internal/uddi"
	"repro/internal/vtime"
	"repro/internal/wsdl"
)

type fixture struct {
	portal   *Portal
	onserve  *core.OnServe
	registry *uddi.Registry
	url      string
	clock    *vtime.Scaled
}

// newFixture wires a portal over a real onServe + grid; unlike the
// appliance tests, the SOAP container is mounted on the same mux so the
// generated endpoints in WSDL documents resolve.
func newFixture(t *testing.T) *fixture {
	return newTracedFixture(t, nil)
}

// newTracedFixture is newFixture with an optional shared span collector
// wired through the grid environment and the core.
func newTracedFixture(t *testing.T, col *trace.Collector) *fixture {
	t.Helper()
	clk := vtime.NewScaled(20000)
	env, err := gridenv.Start(gridenv.Options{
		Clock: clk,
		Sites: []gridsim.SiteConfig{{Name: "siteA", Nodes: 2, CoresPerNode: 4}},
		Trace: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		t.Fatal(err)
	}
	db, err := blobdb.Open(blobdb.Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	container := soap.NewServer(nil, metrics.Cost{})
	registry := uddi.NewRegistry(clk)
	agent := cyberaide.New(cyberaide.Options{Endpoints: env.Endpoints(), Clock: clk})

	mux := http.NewServeMux()
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)

	coreCfg := core.Config{
		DB: db, Container: container, Registry: registry, Agent: agent,
		BaseURL: hs.URL, Clock: clk, PollInterval: 2 * time.Second,
	}
	if col != nil {
		coreCfg.Tracing = trace.NewTracer("onserve", clk, col)
	}
	ons, err := core.New(coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	ons.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})
	p := New(ons, registry, nil, metrics.Cost{})
	mux.Handle("/services/", container)
	mux.Handle("/", p)
	return &fixture{portal: p, onserve: ons, registry: registry, url: hs.URL, clock: clk}
}

func (f *fixture) upload(t *testing.T, filename, program string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", filename)
	io.WriteString(fw, program)
	mw.WriteField("user", "alice")
	mw.WriteField("description", "test upload")
	mw.WriteField("paramName1", "x")
	mw.WriteField("paramType1", "int")
	mw.Close()
	resp, err := http.Post(f.url+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload failed: %d %s", resp.StatusCode, body)
	}
}

func TestRegistryBrowserPage(t *testing.T) {
	f := newFixture(t)
	f.upload(t, "browse.gsh", "echo ${x}\n")
	resp, err := http.Get(f.url + "/registry")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	page := string(body)
	if !strings.Contains(page, "BrowseService") || !strings.Contains(page, "uddi:") {
		t.Fatalf("registry page missing record:\n%s", page)
	}
	// Pattern filtering.
	resp, _ = http.Get(f.url + "/registry?pattern=Nope%25")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "0 published") {
		t.Fatalf("pattern filter broken:\n%s", body)
	}
}

// TestAPIRegistrySortedJSON pins the machine-readable registry listing
// fleet gateways replicate from: JSON, sorted by service name, with the
// UDDI '%' pattern filter.
func TestAPIRegistrySortedJSON(t *testing.T) {
	f := newFixture(t)
	// Upload out of name order; the listing must come back sorted.
	f.upload(t, "zeta.gsh", "echo ${x}\n")
	f.upload(t, "alpha.gsh", "echo ${x}\n")
	f.upload(t, "mid.gsh", "echo ${x}\n")

	resp, err := http.Get(f.url + "/api/registry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var recs []uddi.Record
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	want := []string{"AlphaService", "MidService", "ZetaService"}
	for i, rec := range recs {
		if rec.Name != want[i] {
			t.Fatalf("listing not sorted: got %v at %d, want %v", rec.Name, i, want[i])
		}
		if rec.Owner != "alice" {
			t.Fatalf("record %v missing owner", rec)
		}
	}

	resp, err = http.Get(f.url + "/api/registry?pattern=Alpha%25")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	recs = nil
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "AlphaService" {
		t.Fatalf("pattern filter: %v", recs)
	}
}

func TestRegistryPageWithoutRegistry(t *testing.T) {
	f := newFixture(t)
	p := New(f.onserve, nil, nil, metrics.Cost{})
	srv := httptest.NewServer(p)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/registry")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestClientStubDownload(t *testing.T) {
	f := newFixture(t)
	f.upload(t, "stubbed.gsh", "echo ${x}\n")
	resp, err := http.Get(f.url + "/api/client?name=StubbedService")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	stub := string(body)
	for _, want := range []string{
		"package main",
		"wsclient.ImportURL",
		`"execute"`,
		`"x": "0", // int`,
		f.url + "/services/StubbedService",
	} {
		if !strings.Contains(stub, want) {
			t.Errorf("stub missing %q:\n%s", want, stub)
		}
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "StubbedService_client.go") {
		t.Fatalf("disposition %q", cd)
	}
}

func TestClientStubUnknownService(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.url + "/api/client?name=Ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestOutputFileDownload(t *testing.T) {
	f := newFixture(t)
	f.upload(t, "writer.gsh", "write artifact-${x}.bin 96\necho ok\n")
	inv, err := f.onserve.Invoke("WriterService", map[string]string{"x": "7"})
	if err != nil {
		t.Fatal(err)
	}
	<-inv.DoneChan()
	resp, err := http.Get(f.url + "/api/outfile?ticket=" + inv.Ticket + "&name=artifact-7.bin")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 96 {
		t.Fatalf("status %d, %d bytes", resp.StatusCode, len(body))
	}
	// Missing artifact and missing ticket.
	resp, _ = http.Get(f.url + "/api/outfile?ticket=" + inv.Ticket + "&name=ghost.bin")
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("phantom artifact served")
	}
	resp, _ = http.Get(f.url + "/api/outfile?ticket=inv-000000-ffffffffffff&name=x")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestUploadParamRowsBeyondThree(t *testing.T) {
	f := newFixture(t)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", "many.gsh")
	io.WriteString(fw, "echo ${a}${b}${c}${d}\n")
	mw.WriteField("user", "alice")
	for i, name := range []string{"a", "b", "c", "d"} {
		mw.WriteField("paramName"+string(rune('1'+i)), name)
		mw.WriteField("paramType"+string(rune('1'+i)), "string")
	}
	mw.Close()
	resp, err := http.Post(f.url+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	info, err := f.onserve.ServiceInfo("ManyService")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Params) != 4 {
		t.Fatalf("params %+v", info.Params)
	}
}

func TestUploadSkipsBlankParamRows(t *testing.T) {
	f := newFixture(t)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", "gaps.gsh")
	io.WriteString(fw, "echo ${later}\n")
	mw.WriteField("user", "alice")
	// Row 1 and 2 blank, row 3 set — as a browser form would post it.
	mw.WriteField("paramName1", "")
	mw.WriteField("paramType1", "")
	mw.WriteField("paramName3", "later")
	mw.WriteField("paramType3", "")
	mw.Close()
	resp, err := http.Post(f.url+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	info, err := f.onserve.ServiceInfo("GapsService")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Params) != 1 || info.Params[0].Name != "later" || info.Params[0].Type != wsdl.TypeString {
		t.Fatalf("params %+v", info.Params)
	}
}

func TestUploadRejectsBadParamType(t *testing.T) {
	f := newFixture(t)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", "badtype.gsh")
	io.WriteString(fw, "echo x\n")
	mw.WriteField("user", "alice")
	mw.WriteField("paramName1", "p")
	mw.WriteField("paramType1", "blob")
	mw.Close()
	resp, err := http.Post(f.url+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestUploadMissingFile(t *testing.T) {
	f := newFixture(t)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("user", "alice")
	mw.Close()
	resp, err := http.Post(f.url+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestUploadNonMultipart(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Post(f.url+"/upload", "text/plain", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestInvokeBadJSON(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Post(f.url+"/api/invoke", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHomePage404ForUnknownPaths(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.url + "/definitely/not/here")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMonitoringStats(t *testing.T) {
	f := newFixture(t)
	f.upload(t, "mon.gsh", "echo ${x}\n")
	inv, err := f.onserve.Invoke("MonService", map[string]string{"x": "1"})
	if err != nil {
		t.Fatal(err)
	}
	<-inv.DoneChan()
	resp, err := http.Get(f.url + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var mon core.Monitoring
	json.NewDecoder(resp.Body).Decode(&mon)
	resp.Body.Close()
	if mon.Invocations["DONE"] != 1 {
		t.Fatalf("invocations %+v", mon.Invocations)
	}
	found := false
	for _, s := range mon.Services {
		if s.Name == "MonService" {
			found = true
		}
	}
	if !found {
		t.Fatalf("services %+v", mon.Services)
	}
}

func TestInvokeWaitOutputCancelViaAPI(t *testing.T) {
	f := newFixture(t)
	f.upload(t, "flow.gsh", "compute 500ms\necho flow=${x}\n")

	payload, _ := json.Marshal(map[string]any{
		"service": "FlowService", "args": map[string]string{"x": "5"},
	})
	resp, err := http.Post(f.url+"/api/invoke", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var inv map[string]string
	json.NewDecoder(resp.Body).Decode(&inv)
	resp.Body.Close()
	ticket := inv["ticket"]
	if ticket == "" || inv["job_id"] == "" || inv["site"] == "" {
		t.Fatalf("invoke reply %v", inv)
	}

	resp, err = http.Get(f.url + "/api/wait?ticket=" + ticket)
	if err != nil {
		t.Fatal(err)
	}
	var wait map[string]string
	json.NewDecoder(resp.Body).Decode(&wait)
	resp.Body.Close()
	if wait["state"] != "DONE" || wait["output"] != "flow=5\n" {
		t.Fatalf("wait reply %v", wait)
	}

	resp, _ = http.Get(f.url + "/api/output?ticket=" + ticket)
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(out) != "flow=5\n" {
		t.Fatalf("output %q", out)
	}

	resp, _ = http.Get(f.url + "/api/status?ticket=" + ticket)
	var st map[string]string
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st["state"] != "DONE" {
		t.Fatalf("status %v", st)
	}

	// Cancel of a finished invocation is a clean no-op.
	resp, err = http.Post(f.url+"/api/cancel?ticket="+ticket, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
}

func TestDeleteViaAPI(t *testing.T) {
	f := newFixture(t)
	f.upload(t, "gone.gsh", "echo x\n")
	resp, err := http.Post(f.url+"/api/delete?name=GoneService", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp, _ = http.Get(f.url + "/api/service?name=GoneService")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d after delete", resp.StatusCode)
	}
	// Method checks on the POST-only endpoints.
	for _, path := range []string{"/api/delete?name=x", "/api/cancel?ticket=x", "/api/invoke"} {
		resp, err := http.Get(f.url + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s status %d", path, resp.StatusCode)
		}
	}
}

func TestHomePageRendersUploadedService(t *testing.T) {
	f := newFixture(t)
	f.upload(t, "shown.gsh", "echo x\n")
	resp, err := http.Get(f.url + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(body)
	if !strings.Contains(page, "ShownService") || !strings.Contains(page, "Upload file and generate WebService") {
		t.Fatalf("home page:\n%s", page)
	}
}

func TestUploadWithStageInField(t *testing.T) {
	f := newFixture(t)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", "staged.gsh")
	io.WriteString(fw, "read a.dat\nread b.dat\n")
	mw.WriteField("user", "alice")
	mw.WriteField("stageIn", " a.dat , b.dat ")
	mw.Close()
	resp, err := http.Post(f.url+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	info, err := f.onserve.ServiceInfo("StagedService")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.StageIn) != 2 || info.StageIn[0] != "a.dat" || info.StageIn[1] != "b.dat" {
		t.Fatalf("stage-in %v", info.StageIn)
	}
}

func TestServiceDescribeAPI(t *testing.T) {
	f := newFixture(t)
	f.upload(t, "desc.gsh", "echo ${x}\n")
	resp, err := http.Get(f.url + "/api/service?name=DescService")
	if err != nil {
		t.Fatal(err)
	}
	var info core.ExecutableInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if info.ServiceName != "DescService" || info.Owner != "alice" {
		t.Fatalf("info %+v", info)
	}
}

// TestStatsSurfacesSubsystemCounters pins the /api/stats extension: the
// monitoring tallies stay inline (TestMonitoringStats still decodes the
// document into core.Monitoring), and the poll-hub, submit-hub, staging,
// and trace-ring counters ride alongside.
func TestStatsSurfacesSubsystemCounters(t *testing.T) {
	f := newTracedFixture(t, trace.NewCollector(0, 0))
	f.upload(t, "stats.gsh", "echo ${x}\n")
	inv, err := f.onserve.Invoke("StatsService", map[string]string{"x": "1"})
	if err != nil {
		t.Fatal(err)
	}
	<-inv.DoneChan()
	resp, err := http.Get(f.url + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	for _, key := range []string{"invocations", "services", "collector", "submit", "stage", "placement", "trace", "db"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/api/stats missing %q: have %v", key, keys(doc))
		}
	}
	var tr trace.CollectorStats
	if err := json.Unmarshal(doc["trace"], &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Spans == 0 {
		t.Fatalf("trace ring empty after a traced invocation: %+v", tr)
	}
}

func keys(m map[string]json.RawMessage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceExportAndWaterfall drives one invocation and reads its trace
// back through both the JSON export (path and query forms) and the HTML
// waterfall page.
func TestTraceExportAndWaterfall(t *testing.T) {
	f := newTracedFixture(t, trace.NewCollector(0, 0))
	f.upload(t, "traced.gsh", "echo ${x}\n")
	inv, err := f.onserve.Invoke("TracedService", map[string]string{"x": "1"})
	if err != nil {
		t.Fatal(err)
	}
	<-inv.DoneChan()

	for _, url := range []string{
		f.url + "/api/trace/" + inv.Ticket,
		f.url + "/api/trace?ticket=" + inv.Ticket,
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Ticket string           `json:"ticket"`
			Spans  []trace.SpanData `json:"spans"`
		}
		json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		if doc.Ticket != inv.Ticket || len(doc.Spans) == 0 {
			t.Fatalf("%s: ticket %q, %d spans", url, doc.Ticket, len(doc.Spans))
		}
		if doc.Spans[0].Name != "invoke" {
			t.Fatalf("first span %q, want the invoke root", doc.Spans[0].Name)
		}
	}

	resp, err := http.Get(f.url + "/trace?ticket=" + inv.Ticket)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("waterfall status %d: %s", resp.StatusCode, body)
	}
	page := string(body)
	for _, want := range []string{"onserve/invoke", "gram/gram.submit", "class=\"bar\""} {
		if !strings.Contains(page, want) {
			t.Errorf("waterfall missing %q", want)
		}
	}

	// Unknown tickets 404; unknown tickets on the page too.
	resp, err = http.Get(f.url + "/api/trace/no-such-ticket")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ticket status %d", resp.StatusCode)
	}
}

// TestUploadAndInvokeJoinCallerTrace pins header propagation at the
// portal boundary: a caller-supplied X-Grid-Trace parents the upload and
// invocation trees, and a malformed header degrades to a fresh root
// trace instead of rejecting the request.
func TestUploadAndInvokeJoinCallerTrace(t *testing.T) {
	col := trace.NewCollector(0, 0)
	f := newTracedFixture(t, col)
	f.upload(t, "joined.gsh", "echo ${x}\n")

	caller := trace.NewTracer("cli", f.clock, col)
	root := caller.StartRoot("cli.invoke")
	payload, _ := json.Marshal(map[string]any{
		"service": "JoinedService", "args": map[string]string{"x": "2"},
	})
	req, _ := http.NewRequest("POST", f.url+"/api/invoke", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, root.Context().String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke status %d", resp.StatusCode)
	}
	inv, err := f.onserve.Invocation(out["ticket"])
	if err != nil {
		t.Fatal(err)
	}
	<-inv.DoneChan()
	root.End()

	spans := col.Trace(root.Context().String()[:32])
	var invokeRoot *trace.SpanData
	for i := range spans {
		if spans[i].Name == "invoke" {
			invokeRoot = &spans[i]
		}
	}
	if invokeRoot == nil {
		t.Fatalf("invocation did not join the caller's trace: %d spans", len(spans))
	}
	if invokeRoot.ParentID != spans[0].SpanID || spans[0].Name != "cli.invoke" {
		t.Fatalf("invoke span not parented under the CLI root: %+v", invokeRoot)
	}

	// Malformed header: accepted request, fresh root trace.
	req, _ = http.NewRequest("POST", f.url+"/api/invoke", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(trace.Header, "zz-not-a-trace")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out2 map[string]string
	json.NewDecoder(resp.Body).Decode(&out2)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("malformed-header invoke rejected: %d", resp.StatusCode)
	}
	inv2, err := f.onserve.Invocation(out2["ticket"])
	if err != nil {
		t.Fatal(err)
	}
	<-inv2.DoneChan()
	spans2, err := f.onserve.InvocationTrace(out2["ticket"])
	if err != nil {
		t.Fatal(err)
	}
	if len(spans2) == 0 || spans2[0].TraceID == spans[0].TraceID {
		t.Fatalf("malformed header did not mint a fresh root trace")
	}
}
