package uddi

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
	"repro/internal/soap"
	"repro/internal/vtime"
)

var t0 = time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)

func rec(name string) Record {
	return Record{
		Name:        name,
		Description: "test service " + name,
		WSDLURL:     "http://appliance/services/" + name + "?wsdl",
		Endpoint:    "http://appliance/services/" + name,
		Owner:       "alice",
	}
}

func TestPublishGetDelete(t *testing.T) {
	g := NewRegistry(vtime.NewManual(t0))
	key, err := g.Publish(rec("MonteCarlo"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(key, "uddi:") {
		t.Fatalf("key %q", key)
	}
	got, err := g.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "MonteCarlo" || !got.PublishedAt.Equal(t0) {
		t.Fatalf("record %+v", got)
	}
	if err := g.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if err := g.Delete(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestPublishValidation(t *testing.T) {
	g := NewRegistry(nil)
	if _, err := g.Publish(Record{Name: "", Endpoint: "e"}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("got %v", err)
	}
	if _, err := g.Publish(Record{Name: "n", Endpoint: ""}); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("got %v", err)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	g := NewRegistry(nil)
	if _, err := g.Publish(rec("S")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Publish(rec("S")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("got %v", err)
	}
	if g.Len() != 1 {
		t.Fatalf("len %d", g.Len())
	}
}

func TestDeleteFreesName(t *testing.T) {
	g := NewRegistry(nil)
	key, _ := g.Publish(rec("S"))
	g.Delete(key)
	if _, err := g.Publish(rec("S")); err != nil {
		t.Fatalf("republish after delete: %v", err)
	}
}

func TestGetByName(t *testing.T) {
	g := NewRegistry(nil)
	g.Publish(rec("Alpha"))
	got, err := g.GetByName("Alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Alpha" {
		t.Fatalf("record %+v", got)
	}
	if _, err := g.GetByName("Beta"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestFindWithWildcards(t *testing.T) {
	g := NewRegistry(nil)
	for _, n := range []string{"MonteCarloService", "MatrixService", "WordCount"} {
		if _, err := g.Publish(rec(n)); err != nil {
			t.Fatal(err)
		}
	}
	cases := map[string][]string{
		"":                  {"MatrixService", "MonteCarloService", "WordCount"},
		"%":                 {"MatrixService", "MonteCarloService", "WordCount"},
		"M%Service":         {"MatrixService", "MonteCarloService"},
		"montecarloservice": {"MonteCarloService"}, // case-insensitive exact
		"%Count":            {"WordCount"},
		"Word%":             {"WordCount"},
		"%zzz%":             {},
		"Monte%Carlo%":      {"MonteCarloService"},
	}
	for pattern, want := range cases {
		got := g.Find(pattern)
		names := make([]string, len(got))
		for i, r := range got {
			names[i] = r.Name
		}
		if strings.Join(names, ",") != strings.Join(want, ",") {
			t.Errorf("Find(%q) = %v, want %v", pattern, names, want)
		}
	}
}

func TestMatchPatternProperties(t *testing.T) {
	// Full wildcard always matches; exact name always matches itself;
	// a pattern with a character absent from the name never matches.
	f := func(name string) bool {
		name = strings.Map(func(r rune) rune {
			if r == '%' {
				return 'x'
			}
			return r
		}, name)
		if !MatchPattern("%", name) {
			return false
		}
		if !MatchPattern(name, name) {
			return false
		}
		return MatchPattern("%"+name+"%", name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func soapFixture(t *testing.T) (*Registry, *soap.Client, string) {
	t.Helper()
	g := NewRegistry(vtime.NewManual(t0))
	srv := soap.NewServer(nil, metrics.Cost{})
	if err := srv.Deploy(g.SOAPService()); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return g, &soap.Client{}, hs.URL + "/services/" + ServiceName
}

func TestSOAPPublishAndFind(t *testing.T) {
	g, c, url := soapFixture(t)
	key, err := c.Call(url, Namespace, "publish", []soap.Param{
		{Name: "name", Value: "GridSvc"},
		{Name: "description", Value: "a grid service"},
		{Name: "wsdlURL", Value: "http://x?wsdl"},
		{Name: "endpoint", Value: "http://x"},
		{Name: "owner", Value: "alice"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Fatal("publish did not reach registry")
	}
	out, err := c.Call(url, Namespace, "find", []soap.Param{{Name: "pattern", Value: "Grid%"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := DecodeRecords(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Key != key || recs[0].Owner != "alice" {
		t.Fatalf("records %+v", recs)
	}
}

func TestSOAPGetAndDelete(t *testing.T) {
	g, c, url := soapFixture(t)
	key, _ := g.Publish(rec("S"))
	out, err := c.Call(url, Namespace, "get", []soap.Param{{Name: "key", Value: key}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := DecodeRecord(out)
	if err != nil || r.Name != "S" {
		t.Fatalf("record %+v err %v", r, err)
	}
	if _, err := c.Call(url, Namespace, "delete", []soap.Param{{Name: "key", Value: key}}, nil); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 {
		t.Fatal("delete did not reach registry")
	}
}

func TestSOAPFaults(t *testing.T) {
	_, c, url := soapFixture(t)
	_, err := c.Call(url, Namespace, "get", []soap.Param{{Name: "key", Value: "uddi:nope"}}, nil)
	var f *soap.Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "no such service") {
		t.Fatalf("err %v", err)
	}
	_, err = c.Call(url, Namespace, "publish", []soap.Param{
		{Name: "name", Value: ""}, {Name: "description", Value: ""},
		{Name: "wsdlURL", Value: ""}, {Name: "endpoint", Value: ""}, {Name: "owner", Value: ""},
	}, nil)
	if !errors.As(err, &f) {
		t.Fatalf("err %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeRecords("{"); err == nil {
		t.Fatal("garbage records decoded")
	}
	if _, err := DecodeRecord("["); err == nil {
		t.Fatal("garbage record decoded")
	}
}

func TestConcurrentPublish(t *testing.T) {
	g := NewRegistry(nil)
	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		name := "svc-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		go func() {
			_, err := g.Publish(rec(name))
			done <- err
		}()
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if g.Len() != 32 {
		t.Fatalf("len %d", g.Len())
	}
}
