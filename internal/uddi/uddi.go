// Package uddi implements the service registry of the access layer: "All
// the created Web services are published in an UDDI registry together
// with the descriptions, the WSDL files, and the service endpoint to make
// it easier to find a service" (paper §V). It is the jUDDI substitute:
// a businessService store with publish/find/get/delete operations exposed
// both as a native Go API and as a SOAP service (the wire form the
// paper's clients would use).
//
// Name patterns in find follow UDDI's approximate-match convention: '%'
// matches any run of characters.
package uddi

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/soap"
	"repro/internal/vtime"
	"repro/internal/wsdl"
)

// Errors.
var (
	ErrNotFound  = errors.New("uddi: no such service")
	ErrDuplicate = errors.New("uddi: service name already published")
	ErrBadRecord = errors.New("uddi: record is missing required fields")
)

// Record is one published businessService.
type Record struct {
	Key         string    `json:"key"`
	Name        string    `json:"name"`
	Description string    `json:"description"`
	WSDLURL     string    `json:"wsdl_url"`
	Endpoint    string    `json:"endpoint"`
	Owner       string    `json:"owner"`
	PublishedAt time.Time `json:"published_at"`
}

// Registry is the in-memory registry. It is safe for concurrent use.
type Registry struct {
	clock vtime.Clock

	mu     sync.RWMutex
	byKey  map[string]*Record
	byName map[string]*Record
}

// NewRegistry returns an empty registry on clock (nil = real time).
func NewRegistry(clock vtime.Clock) *Registry {
	if clock == nil {
		clock = vtime.Real{}
	}
	return &Registry{
		clock:  clock,
		byKey:  make(map[string]*Record),
		byName: make(map[string]*Record),
	}
}

// Publish registers r and returns its assigned key. Names are unique;
// republishing an existing name fails with ErrDuplicate (callers must
// Delete first, mirroring jUDDI's save semantics with unique names).
func (g *Registry) Publish(r Record) (string, error) {
	if r.Name == "" || r.Endpoint == "" {
		return "", ErrBadRecord
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, exists := g.byName[r.Name]; exists {
		return "", fmt.Errorf("%w: %q", ErrDuplicate, r.Name)
	}
	r.Key = newKey()
	r.PublishedAt = g.clock.Now()
	rec := r
	g.byKey[rec.Key] = &rec
	g.byName[rec.Name] = &rec
	return rec.Key, nil
}

// Get returns the record for key.
func (g *Registry) Get(key string) (Record, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if r, ok := g.byKey[key]; ok {
		return *r, nil
	}
	return Record{}, fmt.Errorf("%w: key %q", ErrNotFound, key)
}

// GetByName returns the record published under name.
func (g *Registry) GetByName(name string) (Record, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if r, ok := g.byName[name]; ok {
		return *r, nil
	}
	return Record{}, fmt.Errorf("%w: name %q", ErrNotFound, name)
}

// Find returns records whose name matches pattern ('%' wildcard),
// sorted by name. An empty pattern matches everything.
func (g *Registry) Find(pattern string) []Record {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Record
	for _, r := range g.byName {
		if MatchPattern(pattern, r.Name) {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete removes the record for key.
func (g *Registry) Delete(key string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.byKey[key]
	if !ok {
		return fmt.Errorf("%w: key %q", ErrNotFound, key)
	}
	delete(g.byKey, key)
	delete(g.byName, r.Name)
	return nil
}

// Len reports how many services are published.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.byKey)
}

// MatchPattern implements UDDI approximate matching: '%' matches any run
// of characters (case-insensitive, as jUDDI defaults to).
func MatchPattern(pattern, name string) bool {
	if pattern == "" {
		return true
	}
	p := strings.ToLower(pattern)
	n := strings.ToLower(name)
	parts := strings.Split(p, "%")
	// No wildcard: exact match.
	if len(parts) == 1 {
		return p == n
	}
	if !strings.HasPrefix(n, parts[0]) {
		return false
	}
	n = n[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		if part == "" {
			continue
		}
		i := strings.Index(n, part)
		if i < 0 {
			return false
		}
		n = n[i+len(part):]
	}
	last := parts[len(parts)-1]
	return strings.HasSuffix(n, last)
}

func newKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("uddi: entropy unavailable: " + err.Error())
	}
	// uddi:-style key for flavour.
	return "uddi:" + hex.EncodeToString(b[:4]) + "-" + hex.EncodeToString(b[4:8]) + "-" + hex.EncodeToString(b[8:])
}

// Namespace is the SOAP namespace of the registry service.
const Namespace = "urn:repro:uddi"

// ServiceName is the name the registry deploys under in the SOAP server.
const ServiceName = "UDDIRegistry"

// SOAPService exposes the registry as a SOAP service with the inquiry and
// publish operations a remote client needs. Results that are lists travel
// as JSON arrays inside the <return> element.
func (g *Registry) SOAPService() *soap.Service {
	def := wsdl.ServiceDef{
		Name:      ServiceName,
		Namespace: Namespace,
		Doc:       "UDDI-style registry: publish and discover generated Grid Web services",
		Operations: []wsdl.OperationDef{
			{
				Name: "publish",
				Doc:  "Publish a service; returns its key",
				Params: []wsdl.ParamDef{
					{Name: "name", Type: wsdl.TypeString},
					{Name: "description", Type: wsdl.TypeString},
					{Name: "wsdlURL", Type: wsdl.TypeString},
					{Name: "endpoint", Type: wsdl.TypeString},
					{Name: "owner", Type: wsdl.TypeString},
				},
			},
			{
				Name:   "find",
				Doc:    "Find services by name pattern ('%' wildcard); returns a JSON array",
				Params: []wsdl.ParamDef{{Name: "pattern", Type: wsdl.TypeString}},
			},
			{
				Name:   "get",
				Doc:    "Get one service record by key; returns a JSON object",
				Params: []wsdl.ParamDef{{Name: "key", Type: wsdl.TypeString}},
			},
			{
				Name:   "delete",
				Doc:    "Delete a service record by key",
				Params: []wsdl.ParamDef{{Name: "key", Type: wsdl.TypeString}},
			},
		},
	}
	svc := soap.NewService(def)
	svc.MustBind("publish", func(req *soap.Request) (string, error) {
		key, err := g.Publish(Record{
			Name:        req.Args["name"],
			Description: req.Args["description"],
			WSDLURL:     req.Args["wsdlURL"],
			Endpoint:    req.Args["endpoint"],
			Owner:       req.Args["owner"],
		})
		if err != nil {
			return "", &soap.Fault{Code: soap.FaultClient, String: err.Error()}
		}
		return key, nil
	})
	svc.MustBind("find", func(req *soap.Request) (string, error) {
		recs := g.Find(req.Args["pattern"])
		b, err := json.Marshal(recs)
		if err != nil {
			return "", err
		}
		return string(b), nil
	})
	svc.MustBind("get", func(req *soap.Request) (string, error) {
		rec, err := g.Get(req.Args["key"])
		if err != nil {
			return "", &soap.Fault{Code: soap.FaultClient, String: err.Error()}
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return "", err
		}
		return string(b), nil
	})
	svc.MustBind("delete", func(req *soap.Request) (string, error) {
		if err := g.Delete(req.Args["key"]); err != nil {
			return "", &soap.Fault{Code: soap.FaultClient, String: err.Error()}
		}
		return "ok", nil
	})
	return svc
}

// DecodeRecords parses the JSON array returned by the find operation.
func DecodeRecords(s string) ([]Record, error) {
	var out []Record
	if err := json.Unmarshal([]byte(s), &out); err != nil {
		return nil, fmt.Errorf("uddi: decode records: %w", err)
	}
	return out, nil
}

// DecodeRecord parses the JSON object returned by the get operation.
func DecodeRecord(s string) (Record, error) {
	var out Record
	if err := json.Unmarshal([]byte(s), &out); err != nil {
		return Record{}, fmt.Errorf("uddi: decode record: %w", err)
	}
	return out, nil
}
