package uddi

import (
	"fmt"
	"testing"
)

func seededRegistry(b *testing.B, n int) *Registry {
	b.Helper()
	g := NewRegistry(nil)
	for i := 0; i < n; i++ {
		_, err := g.Publish(Record{
			Name:     fmt.Sprintf("Service%04d", i),
			Endpoint: fmt.Sprintf("http://h/services/Service%04d", i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return g
}

func BenchmarkPublish(b *testing.B) {
	g := NewRegistry(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Publish(Record{
			Name:     fmt.Sprintf("S%09d", i),
			Endpoint: "http://h/s",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindExact(b *testing.B) {
	g := seededRegistry(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Find("Service0500"); len(got) != 1 {
			b.Fatalf("found %d", len(got))
		}
	}
}

func BenchmarkFindWildcard(b *testing.B) {
	g := seededRegistry(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Find("Service05%"); len(got) != 100 {
			b.Fatalf("found %d", len(got))
		}
	}
}

func BenchmarkMatchPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MatchPattern("Monte%Carlo%Service", "MonteSuperCarloGridService")
	}
}
