// Command gridd runs the simulated production Grid: the TeraGrid-like
// site federation with its GRAM gatekeeper, per-site GridFTP servers and
// the MyProxy credential repository, all on loopback ports. It writes an
// endpoints file that cmd/onserve consumes, and registers the requested
// users' credentials in MyProxy.
//
//	gridd -endpoints grid.json -user alice:secret -user bob:hunter2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gridenv"
)

// EndpointsFile is the JSON document gridd writes for onserve.
type EndpointsFile struct {
	GramURL     string            `json:"gram_url"`
	MyProxyAddr string            `json:"myproxy_addr"`
	FTPURLs     map[string]string `json:"ftp_urls"`
	Sites       []string          `json:"sites"`
}

type userList []string

func (u *userList) String() string     { return strings.Join(*u, ",") }
func (u *userList) Set(v string) error { *u = append(*u, v); return nil }

func main() {
	var (
		endpointsPath = flag.String("endpoints", "grid-endpoints.json", "file to write grid endpoints into")
		users         userList
	)
	flag.Var(&users, "user", "user:passphrase to register in MyProxy (repeatable)")
	flag.Parse()

	if err := run(*endpointsPath, users); err != nil {
		fmt.Fprintln(os.Stderr, "gridd:", err)
		os.Exit(1)
	}
}

func run(endpointsPath string, users userList) error {
	env, err := gridenv.Start(gridenv.Options{})
	if err != nil {
		return err
	}
	defer env.Close()

	for _, u := range users {
		name, pass, ok := strings.Cut(u, ":")
		if !ok {
			return fmt.Errorf("bad -user %q, want name:passphrase", u)
		}
		if _, err := env.AddUser(name, pass, 30*24*time.Hour); err != nil {
			return err
		}
		fmt.Printf("registered user %s in MyProxy\n", name)
	}

	doc := EndpointsFile{
		GramURL:     env.GramURL,
		MyProxyAddr: env.MyProxyAddr,
		FTPURLs:     env.FTPURLs,
		Sites:       env.Grid.SiteNames(),
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(endpointsPath, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("production grid up: %d sites\n", len(doc.Sites))
	fmt.Printf("  GRAM gatekeeper  %s\n", doc.GramURL)
	fmt.Printf("  MyProxy          %s\n", doc.MyProxyAddr)
	fmt.Printf("  endpoints file   %s\n", endpointsPath)
	fmt.Println("press Ctrl-C to stop")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("\nshutting down")
	return nil
}
