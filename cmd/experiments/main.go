// Command experiments regenerates the paper's evaluation: Figures 6-8,
// the §VIII-D scalability sweep, the §VIII-B many-small-jobs check, and
// the design-choice ablations. Each experiment prints an ASCII rendering
// of the figure and writes the raw series as CSV under -out.
//
//	experiments -fig 7            # one figure
//	experiments -all              # everything the paper reports
//	experiments -scalability -scale 500
//	experiments -hotpath          # invocation hot-path ablations -> results/hotpath.json
//	experiments -pollhub          # output-collection ablation -> results/pollhub.json
//	experiments -submit           # batched-submission ablation -> results/submit.json
//	experiments -stage            # staging data-plane ablation -> results/stage.json
//	experiments -placement        # data-aware placement ablation -> results/placement.json
//	experiments -blobdb           # storage-engine ablation -> results/blobdb.json
//	experiments -trace            # per-request span breakdown -> results/trace.json
//	experiments -fleet            # consistent-hash fleet scale-out -> results/fleet.json
//	experiments -tenancy          # multi-tenant noisy-neighbor ablation -> results/tenancy.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		fig          = flag.Int("fig", 0, "regenerate one figure (6, 7 or 8)")
		scalability  = flag.Bool("scalability", false, "run the §VIII-D concurrency sweep")
		smallJobs    = flag.Bool("smalljobs", false, "run the §VIII-B many-small-jobs check")
		ablations    = flag.Bool("ablations", false, "run the design-choice ablations")
		hotpath      = flag.Bool("hotpath", false, "run the invocation hot-path ablations")
		pollhub      = flag.Bool("pollhub", false, "run the poll-hub output-collection ablation")
		submit       = flag.Bool("submit", false, "run the batched-submission front-end ablation")
		stage        = flag.Bool("stage", false, "run the chunked-staging data-plane ablation")
		placement    = flag.Bool("placement", false, "run the data-aware placement + pre-replication ablation")
		blobdbFlag   = flag.Bool("blobdb", false, "run the storage-engine sharding/compaction/replay ablation")
		replayRecs   = flag.Int("replay-records", 1_000_000, "record count for the -blobdb cold-boot replay study")
		traceFlag    = flag.Bool("trace", false, "run the traced small/large stock/all-knobs breakdown")
		fleetFlag    = flag.Bool("fleet", false, "run the consistent-hash fleet scale-out ablation (1/4/16 appliances + kill-one failover)")
		tenancyFlag  = flag.Bool("tenancy", false, "run the multi-tenant noisy-neighbor ablation (hog burst vs victim p99, off/on)")
		tenancyBurst = flag.Int("tenancy-burst", 1000, "hog burst size for -tenancy")
		baseline     = flag.Bool("baseline", false, "compare raw JSE access with the SaaS path")
		all          = flag.Bool("all", false, "run every experiment")
		scale        = flag.Float64("scale", 200, "virtual-time dilation factor")
		outDir       = flag.String("out", "results", "directory for CSV output")
		jobs         = flag.Int("jobs", 50, "job count for -smalljobs")
	)
	flag.Parse()
	if err := run(*fig, *scalability, *smallJobs, *ablations, *hotpath, *pollhub, *submit, *stage, *placement, *blobdbFlag, *traceFlag, *fleetFlag, *tenancyFlag, *baseline, *all, *scale, *outDir, *jobs, *replayRecs, *tenancyBurst); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(fig int, scalability, smallJobs, ablations, hotpath, pollhub, submit, stage, placement, blobdbFlag, traceFlag, fleetFlag, tenancyFlag, baseline, all bool, scale float64, outDir string, jobs, replayRecs, tenancyBurst int) error {
	opts := experiments.Options{Scale: scale}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	any := false

	runFig := func(n int, f func(experiments.Options) (*experiments.Result, error)) error {
		any = true
		res, err := f(opts)
		if err != nil {
			return fmt.Errorf("fig%d: %w", n, err)
		}
		fmt.Print(res.Render())
		path := filepath.Join(outDir, fmt.Sprintf("fig%d.csv", n))
		if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
		return nil
	}

	if all || fig == 6 {
		if err := runFig(6, experiments.Fig6); err != nil {
			return err
		}
	}
	if all || fig == 7 {
		if err := runFig(7, experiments.Fig7); err != nil {
			return err
		}
	}
	if all || fig == 8 {
		if err := runFig(8, experiments.Fig8); err != nil {
			return err
		}
	}
	if all || scalability {
		any = true
		res, err := experiments.Scalability(opts, []int{1, 2, 4, 8}, 512)
		if err != nil {
			return fmt.Errorf("scalability: %w", err)
		}
		fmt.Print(res.Render())
		path := filepath.Join(outDir, "scalability.csv")
		if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || smallJobs {
		any = true
		res, err := experiments.SmallJobs(opts, jobs, 8)
		if err != nil {
			return fmt.Errorf("smalljobs: %w", err)
		}
		fmt.Print(res.Render())
		fmt.Println()
	}
	if all || ablations {
		any = true
		type study struct {
			name string
			run  func() (*experiments.AblationResult, error)
		}
		studies := []study{
			{"double-write", func() (*experiments.AblationResult, error) {
				return experiments.AblationDoubleWrite(opts, 1024)
			}},
			{"staging-cache", func() (*experiments.AblationResult, error) {
				return experiments.AblationStagingCache(opts, 768, 3)
			}},
			{"poll-interval", func() (*experiments.AblationResult, error) {
				return experiments.AblationPolling(opts, nil)
			}},
			{"compression", func() (*experiments.AblationResult, error) {
				return experiments.AblationCompression(opts, 4096)
			}},
		}
		for _, s := range studies {
			res, err := s.run()
			if err != nil {
				return fmt.Errorf("ablation %s: %w", s.name, err)
			}
			fmt.Print(res.Render())
			fmt.Println()
		}
		sched, err := experiments.SchedulerPolicies(scale)
		if err != nil {
			return fmt.Errorf("ablation schedulers: %w", err)
		}
		fmt.Print(sched.Render())
		fmt.Println()
	}
	if all || hotpath {
		any = true
		res, err := experiments.AblationHotPath(opts, 256, 3)
		if err != nil {
			return fmt.Errorf("hotpath: %w", err)
		}
		gc, err := experiments.AblationGroupCommit(64, 8, 16)
		if err != nil {
			return fmt.Errorf("hotpath group-commit: %w", err)
		}
		res.Rows = append(res.Rows, gc.Rows...)
		res.Notes = append(res.Notes, gc.Notes...)
		fmt.Print(res.Render())
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "hotpath.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || pollhub {
		any = true
		res, err := experiments.AblationPollHub(opts, 64)
		if err != nil {
			return fmt.Errorf("pollhub: %w", err)
		}
		fmt.Print(res.Render())
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "pollhub.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || submit {
		any = true
		res, err := experiments.AblationSubmit(opts, 64)
		if err != nil {
			return fmt.Errorf("submit: %w", err)
		}
		fmt.Print(res.Render())
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "submit.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || stage {
		any = true
		res, err := experiments.AblationStage(opts, 0)
		if err != nil {
			return fmt.Errorf("stage: %w", err)
		}
		fmt.Print(res.Render())
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "stage.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || placement {
		any = true
		res, err := experiments.AblationPlacement(opts, 64, nil)
		if err != nil {
			return fmt.Errorf("placement: %w", err)
		}
		fmt.Print(res.Render())
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "placement.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || blobdbFlag {
		any = true
		res, err := experiments.AblationBlobDB(replayRecs)
		if err != nil {
			return fmt.Errorf("blobdb: %w", err)
		}
		fmt.Print(res.Render())
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "blobdb.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || traceFlag {
		any = true
		res, err := experiments.TraceBreakdown(opts, 0)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Print(res.Render())
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "trace.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || fleetFlag {
		any = true
		res, err := experiments.AblationFleet(opts, nil, 64)
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		fmt.Print(res.Render())
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "fleet.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || tenancyFlag {
		any = true
		res, err := experiments.AblationTenancy(opts, tenancyBurst)
		if err != nil {
			return fmt.Errorf("tenancy: %w", err)
		}
		fmt.Print(res.Render())
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "tenancy.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if all || baseline {
		any = true
		res, err := experiments.BaselineJSE(opts, 256)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		fmt.Print(res.Render())
		fmt.Println()
	}
	if !any {
		return fmt.Errorf("nothing selected; use -fig N, -scalability, -smalljobs, -ablations, -hotpath, -pollhub, -submit, -stage, -placement, -blobdb, -trace, -fleet, -tenancy, -baseline or -all")
	}
	return nil
}
