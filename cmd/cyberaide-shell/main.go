// Command cyberaide-shell is the reproduction's take on Cyberaide Shell,
// the interactive companion the paper names alongside the toolkit
// ("well-known examples are Cyberaide toolkit and Cyberaide Shell",
// §III). It drives the Cyberaide agent's SOAP facade on a running
// appliance: authenticate against MyProxy, stage files, submit JSDL
// jobs, poll status and collect output — the raw JSE workflow, for users
// who want the grid rather than the SaaS layer.
//
//	cyberaide-shell -appliance http://127.0.0.1:8080
//	> auth alice s3cret
//	> sites
//	> upload ncsa-abe job.gsh
//	> submit job.gsh ncsa-abe samples=100
//	> status ncsa-abe:job-000001
//	> output ncsa-abe:job-000001
//	> quit
package main

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cyberaide"
	"repro/internal/jsdl"
	"repro/internal/soap"
)

func main() {
	applianceURL := flag.String("appliance", "http://127.0.0.1:8080", "appliance base URL")
	flag.Parse()
	sh := &shell{
		agentURL: *applianceURL + "/services/" + cyberaide.ServiceName,
		out:      os.Stdout,
	}
	fmt.Println("Cyberaide Shell — type 'help' for commands, 'quit' to exit")
	sh.repl(os.Stdin)
}

type shell struct {
	agentURL string
	client   soap.Client
	session  string
	out      io.Writer
}

func (sh *shell) repl(in io.Reader) {
	scanner := bufio.NewScanner(in)
	for {
		fmt.Fprint(sh.out, "> ")
		if !scanner.Scan() {
			fmt.Fprintln(sh.out)
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := sh.dispatch(line); err != nil {
			fmt.Fprintln(sh.out, "error:", err)
		}
	}
}

// dispatch executes one shell line; exported-style separation keeps it
// testable without a TTY.
func (sh *shell) dispatch(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Fprint(sh.out, `commands:
  auth <user> <passphrase>          MyProxy logon (opens a session)
  upload <site> <file>              stage a local file to a site
  replicate <from> <to> <name>      third-party transfer between sites
  submit <exe> <site> [k=v ...]     submit a job (exe must be staged)
  status <jobID>                    one status poll
  output <jobID>                    stdout snapshot
  cancel <jobID>                    cancel a job
  usage                             per-site accounting for this identity
  quit
`)
		return nil
	case "auth":
		if len(args) != 2 {
			return fmt.Errorf("usage: auth <user> <passphrase>")
		}
		sess, err := sh.call("authenticate",
			soap.Param{Name: "user", Value: args[0]},
			soap.Param{Name: "passphrase", Value: args[1]},
			soap.Param{Name: "lifetimeSeconds", Value: "43200"})
		if err != nil {
			return err
		}
		sh.session = sess
		fmt.Fprintln(sh.out, "session", sess)
		return nil
	case "usage":
		if err := sh.needSession(); err != nil {
			return err
		}
		out, err := sh.call("usage", soap.Param{Name: "session", Value: sh.session})
		if err != nil {
			return err
		}
		var rows []map[string]any
		if err := json.Unmarshal([]byte(out), &rows); err != nil {
			return err
		}
		if len(rows) == 0 {
			fmt.Fprintln(sh.out, "no usage recorded yet")
			return nil
		}
		for _, row := range rows {
			u, _ := row["usage"].(map[string]any)
			fmt.Fprintf(sh.out, "%-14v jobs=%v cpu_seconds=%.1f\n",
				row["site"], u["jobs"], toF(u["cpu_seconds"]))
		}
		return nil
	case "upload":
		if err := sh.needSession(); err != nil {
			return err
		}
		if len(args) != 2 {
			return fmt.Errorf("usage: upload <site> <file>")
		}
		data, err := os.ReadFile(args[1])
		if err != nil {
			return err
		}
		checksum, err := sh.call("upload",
			soap.Param{Name: "session", Value: sh.session},
			soap.Param{Name: "site", Value: args[0]},
			soap.Param{Name: "name", Value: baseName(args[1])},
			soap.Param{Name: "dataBase64", Value: base64.StdEncoding.EncodeToString(data)})
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, "staged", baseName(args[1]), "sha256", checksum[:16]+"…")
		return nil
	case "replicate":
		if err := sh.needSession(); err != nil {
			return err
		}
		if len(args) != 3 {
			return fmt.Errorf("usage: replicate <fromSite> <toSite> <name>")
		}
		checksum, err := sh.call("replicate",
			soap.Param{Name: "session", Value: sh.session},
			soap.Param{Name: "fromSite", Value: args[0]},
			soap.Param{Name: "toSite", Value: args[1]},
			soap.Param{Name: "name", Value: args[2]})
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, "replicated, sha256", checksum[:16]+"…")
		return nil
	case "submit":
		if err := sh.needSession(); err != nil {
			return err
		}
		if len(args) < 2 {
			return fmt.Errorf("usage: submit <exe> <site> [k=v ...]")
		}
		desc := jsdl.Description{Executable: args[0], Site: args[1], Owner: "set-by-agent"}
		if len(args) > 2 {
			desc.Arguments = map[string]string{}
			for _, kv := range args[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return fmt.Errorf("bad argument %q, want k=v", kv)
				}
				desc.Arguments[k] = v
			}
		}
		doc, err := jsdl.Marshal(&desc)
		if err != nil {
			return err
		}
		jobID, err := sh.call("submit",
			soap.Param{Name: "session", Value: sh.session},
			soap.Param{Name: "jsdl", Value: string(doc)})
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, "job", jobID)
		return nil
	case "status":
		if err := sh.needSession(); err != nil {
			return err
		}
		if len(args) != 1 {
			return fmt.Errorf("usage: status <jobID>")
		}
		stJSON, err := sh.call("status",
			soap.Param{Name: "session", Value: sh.session},
			soap.Param{Name: "job", Value: args[0]})
		if err != nil {
			return err
		}
		var st map[string]any
		if err := json.Unmarshal([]byte(stJSON), &st); err != nil {
			return err
		}
		fmt.Fprintf(sh.out, "%v on %v: %v %v\n", st["job_id"], st["site"], st["state"], st["message"])
		return nil
	case "output":
		if err := sh.needSession(); err != nil {
			return err
		}
		if len(args) != 1 {
			return fmt.Errorf("usage: output <jobID>")
		}
		out, err := sh.call("output",
			soap.Param{Name: "session", Value: sh.session},
			soap.Param{Name: "job", Value: args[0]})
		if err != nil {
			return err
		}
		fmt.Fprint(sh.out, out)
		if !strings.HasSuffix(out, "\n") {
			fmt.Fprintln(sh.out)
		}
		return nil
	case "cancel":
		if err := sh.needSession(); err != nil {
			return err
		}
		if len(args) != 1 {
			return fmt.Errorf("usage: cancel <jobID>")
		}
		state, err := sh.call("cancel",
			soap.Param{Name: "session", Value: sh.session},
			soap.Param{Name: "job", Value: args[0]})
		if err != nil {
			return err
		}
		fmt.Fprintln(sh.out, "job now", state)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

func (sh *shell) needSession() error {
	if sh.session == "" {
		return fmt.Errorf("authenticate first: auth <user> <passphrase>")
	}
	return nil
}

func (sh *shell) call(op string, params ...soap.Param) (string, error) {
	return sh.client.Call(sh.agentURL, cyberaide.Namespace, op, params, nil)
}

// toF coerces a decoded JSON number to float64.
func toF(v any) float64 {
	f, _ := v.(float64)
	return f
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
