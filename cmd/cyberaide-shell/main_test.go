package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/appliance"
	"repro/internal/cyberaide"
	"repro/internal/gridenv"
	"repro/internal/gridsim"
	"repro/internal/vtime"
)

func newShell(t *testing.T) (*shell, *bytes.Buffer) {
	t.Helper()
	clk := vtime.NewScaled(20000)
	env, err := gridenv.Start(gridenv.Options{
		Clock: clk,
		Sites: []gridsim.SiteConfig{{Name: "siteA", Nodes: 1, CoresPerNode: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		t.Fatal(err)
	}
	img, err := appliance.BuildImage(appliance.Config{Endpoints: env.Endpoints(), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	app, err := img.Boot(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { app.Shutdown() })
	var out bytes.Buffer
	return &shell{
		agentURL: app.BaseURL + "/services/" + cyberaide.ServiceName,
		out:      &out,
	}, &out
}

func TestShellFullWorkflow(t *testing.T) {
	sh, out := newShell(t)

	// Session required before grid commands.
	if err := sh.dispatch("status x"); err == nil {
		t.Fatal("status worked without a session")
	}
	if err := sh.dispatch("auth alice pw"); err != nil {
		t.Fatal(err)
	}
	if sh.session == "" {
		t.Fatal("no session recorded")
	}

	// Stage a local file.
	dir := t.TempDir()
	path := filepath.Join(dir, "job.gsh")
	os.WriteFile(path, []byte("compute 500ms\necho shell says ${greeting}\n"), 0o644)
	if err := sh.dispatch("upload siteA " + path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "staged job.gsh") {
		t.Fatalf("output %q", out.String())
	}

	// Submit and find the job id in the output.
	out.Reset()
	if err := sh.dispatch("submit job.gsh siteA greeting=hello"); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(out.String())
	jobID := strings.TrimPrefix(line, "job ")
	if !strings.HasPrefix(jobID, "siteA:job-") {
		t.Fatalf("job line %q", line)
	}

	// Poll until done.
	deadline := time.Now().Add(5 * time.Second)
	for {
		out.Reset()
		if err := sh.dispatch("status " + jobID); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(out.String(), "DONE") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %q", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}

	out.Reset()
	if err := sh.dispatch("output " + jobID); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shell says hello") {
		t.Fatalf("output %q", out.String())
	}
}

func TestShellUsageAndReplicate(t *testing.T) {
	sh, out := newShell(t)
	sh.dispatch("auth alice pw")
	// Usage is empty before any job runs.
	out.Reset()
	if err := sh.dispatch("usage"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no usage recorded") {
		t.Fatalf("usage output %q", out.String())
	}
	// Stage, run, and check accounting.
	dir := t.TempDir()
	path := filepath.Join(dir, "acct.gsh")
	os.WriteFile(path, []byte("compute 2s\necho done\n"), 0o644)
	sh.dispatch("upload siteA " + path)
	out.Reset()
	sh.dispatch("submit acct.gsh siteA")
	jobID := strings.TrimPrefix(strings.TrimSpace(out.String()), "job ")
	deadline := time.Now().Add(5 * time.Second)
	for {
		out.Reset()
		sh.dispatch("status " + jobID)
		if strings.Contains(out.String(), "DONE") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %q", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	out.Reset()
	if err := sh.dispatch("usage"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "siteA") || !strings.Contains(out.String(), "jobs=1") {
		t.Fatalf("usage output %q", out.String())
	}
	// Replicate needs a second site; this world has one, so expect a
	// clean error rather than a hang.
	if err := sh.dispatch("replicate siteA nowhere acct.gsh"); err == nil {
		t.Fatal("replicate to unknown site succeeded")
	}
}

func TestShellCancel(t *testing.T) {
	sh, out := newShell(t)
	sh.dispatch("auth alice pw")
	dir := t.TempDir()
	path := filepath.Join(dir, "long.gsh")
	os.WriteFile(path, []byte("emit 1s 5000 t\n"), 0o644)
	if err := sh.dispatch("upload siteA " + path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := sh.dispatch("submit long.gsh siteA"); err != nil {
		t.Fatal(err)
	}
	jobID := strings.TrimPrefix(strings.TrimSpace(out.String()), "job ")
	out.Reset()
	if err := sh.dispatch("cancel " + jobID); err != nil {
		t.Fatal(err)
	}
}

func TestShellErrors(t *testing.T) {
	sh, _ := newShell(t)
	if err := sh.dispatch("frobnicate"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := sh.dispatch("auth onlyuser"); err == nil {
		t.Fatal("bad auth arity accepted")
	}
	if err := sh.dispatch("auth alice wrongpass"); err == nil {
		t.Fatal("bad passphrase accepted")
	}
	sh.dispatch("auth alice pw")
	if err := sh.dispatch("upload siteA /does/not/exist.gsh"); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := sh.dispatch("submit e.gsh siteA not-a-kv"); err == nil {
		t.Fatal("bad kv accepted")
	}
	if err := sh.dispatch("help"); err != nil {
		t.Fatal(err)
	}
}

func TestShellREPLQuit(t *testing.T) {
	sh, out := newShell(t)
	sh.repl(strings.NewReader("help\nquit\n"))
	if !strings.Contains(out.String(), "commands:") {
		t.Fatalf("repl output %q", out.String())
	}
}

func TestBaseName(t *testing.T) {
	if baseName("/a/b/c.gsh") != "c.gsh" || baseName("plain") != "plain" {
		t.Fatal("baseName wrong")
	}
}
