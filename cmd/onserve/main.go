// Command onserve builds and boots the Cyberaide onServe virtual
// appliance against a running grid (see cmd/gridd): portal, SOAP
// container, UDDI registry, blob database and Cyberaide agent behind one
// HTTP endpoint.
//
//	onserve -endpoints grid.json -listen 127.0.0.1:8080 -user alice:secret
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/cyberaide"
	"repro/internal/gateway"
	"repro/internal/tenant"
	"repro/internal/trace"
)

type endpointsFile struct {
	GramURL     string            `json:"gram_url"`
	MyProxyAddr string            `json:"myproxy_addr"`
	FTPURLs     map[string]string `json:"ftp_urls"`
}

type userList []string

func (u *userList) String() string     { return strings.Join(*u, ",") }
func (u *userList) Set(v string) error { *u = append(*u, v); return nil }

func main() {
	var (
		endpointsPath = flag.String("endpoints", "grid-endpoints.json", "grid endpoints file written by gridd")
		listen        = flag.String("listen", "127.0.0.1:0", "address for the appliance HTTP endpoint")
		dbDir         = flag.String("db", "", "database directory (empty: in-memory)")
		tracing       = flag.Bool("trace", false, "record appliance-side invocation spans (read back via /api/trace, /trace, onserve-cli trace)")
		chunked       = flag.Bool("chunked-staging", false, "stage executables through the chunked, content-addressed GridFTP protocol")
		dataAware     = flag.Bool("data-placement", false, "score sites by chunk possession + transfer cost + load instead of load alone (implies probing the chunk stores; pair with -chunked-staging)")
		replicateTopK = flag.Int("replicate-topk", 0, "pre-replicate freshly staged executables to the K least-loaded sibling sites (0: off)")
		pushEvents    = flag.Bool("push-events", false, "collect job status over the gatekeeper's long-lived event streams instead of polling (falls back to the poll hub against a stock gatekeeper)")
		walShards     = flag.Int("wal-shards", 0, "split the database across N sharded, segmented WALs (0 or 1: stock single-WAL layout; changing the count migrates the directory in place)")
		segmentBytes  = flag.Int64("segment-bytes", 0, "roll a shard's live WAL segment past this size (0: 16 MiB default; needs -wal-shards >= 2)")
		autoCompact   = flag.Bool("auto-compact", false, "retire dead WAL segments in the background instead of stop-the-world compaction (needs -wal-shards >= 2)")
		fleet         = flag.Int("fleet", 0, "boot N appliances behind a consistent-hash gateway on -listen instead of one appliance (0: single appliance, stock wire behaviour)")
		tenancy       = flag.Bool("tenancy", false, "enforce the multi-tenant control plane: API keys, policy, rate limits, fair-share quotas and the audit log (needs -keys-file)")
		keysFile      = flag.String("keys-file", "", "tenancy config JSON (owners, keys, limits, audit); see README for the schema")
		users         userList
	)
	flag.Var(&users, "user", "portal-user:myproxy-passphrase to register (repeatable)")
	flag.Parse()
	opts := bootOptions{
		endpointsPath: *endpointsPath,
		listen:        *listen,
		dbDir:         *dbDir,
		tracing:       *tracing,
		chunked:       *chunked,
		dataAware:     *dataAware,
		replicateTopK: *replicateTopK,
		pushEvents:    *pushEvents,
		walShards:     *walShards,
		segmentBytes:  *segmentBytes,
		autoCompact:   *autoCompact,
		fleet:         *fleet,
		tenancy:       *tenancy,
		keysFile:      *keysFile,
		users:         users,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "onserve:", err)
		os.Exit(1)
	}
}

type bootOptions struct {
	endpointsPath string
	listen        string
	dbDir         string
	tracing       bool
	chunked       bool
	dataAware     bool
	replicateTopK int
	pushEvents    bool
	walShards     int
	segmentBytes  int64
	autoCompact   bool
	fleet         int
	tenancy       bool
	keysFile      string
	users         userList
}

func run(opts bootOptions) error {
	endpointsPath, listen, dbDir, tracing, users :=
		opts.endpointsPath, opts.listen, opts.dbDir, opts.tracing, opts.users
	raw, err := os.ReadFile(endpointsPath)
	if err != nil {
		return fmt.Errorf("read endpoints (run gridd first?): %w", err)
	}
	var eps endpointsFile
	if err := json.Unmarshal(raw, &eps); err != nil {
		return fmt.Errorf("parse endpoints: %w", err)
	}

	cfg := appliance.Config{
		Endpoints: cyberaide.Endpoints{
			GramURL:     eps.GramURL,
			MyProxyAddr: eps.MyProxyAddr,
			FTPURLs:     eps.FTPURLs,
		},
		DBDir:              dbDir,
		ChunkedStaging:     opts.chunked,
		DataAwarePlacement: opts.dataAware,
		ReplicateTopK:      opts.replicateTopK,
		PushEvents:         opts.pushEvents,
		WALShards:          opts.walShards,
		SegmentBytes:       opts.segmentBytes,
		AutoCompact:        opts.autoCompact,
	}
	if tracing {
		// The grid services live in another process (gridd), so the
		// trace tree covers the appliance's side of the pipeline.
		cfg.Trace = trace.NewCollector(0, 0)
	}
	if opts.tenancy {
		if opts.keysFile == "" {
			return fmt.Errorf("-tenancy needs -keys-file")
		}
		tc, err := tenant.LoadConfig(opts.keysFile)
		if err != nil {
			return err
		}
		cfg.Tenancy = &tc
	}
	if opts.fleet > 0 {
		return runFleet(cfg, opts, users)
	}
	img, err := appliance.BuildImage(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("appliance image built: %s\n", strings.Join(img.Manifest, ", "))

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	app, err := img.Boot(ln)
	if err != nil {
		return err
	}
	defer app.Shutdown()

	for _, u := range users {
		name, pass, ok := strings.Cut(u, ":")
		if !ok {
			return fmt.Errorf("bad -user %q, want name:passphrase", u)
		}
		app.OnServe.RegisterUser(name, core.UserAuth{MyProxyUser: name, Passphrase: pass})
		fmt.Printf("registered portal user %s\n", name)
	}

	if dbDir != "" {
		n, err := app.OnServe.RedeployAll()
		if err != nil {
			return fmt.Errorf("redeploy stored services: %w", err)
		}
		if n > 0 {
			fmt.Printf("redeployed %d stored services from %s\n", n, dbDir)
		}
	}

	fmt.Printf("Cyberaide onServe appliance up\n")
	fmt.Printf("  portal       %s/\n", app.BaseURL)
	fmt.Printf("  services     %s\n", app.ServicesURL())
	fmt.Printf("  UDDI         %s\n", app.RegistryURL())
	fmt.Println("press Ctrl-C to stop")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("\nshutting down")
	return nil
}

// runFleet boots opts.fleet appliances behind one consistent-hash
// gateway and serves the portal API on -listen.
func runFleet(cfg appliance.Config, opts bootOptions, users userList) error {
	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	gw, err := gateway.Boot(gateway.Config{
		Fleet:     opts.fleet,
		Appliance: cfg,
	}, ln)
	if err != nil {
		return err
	}
	defer gw.Shutdown()

	for _, u := range users {
		name, pass, ok := strings.Cut(u, ":")
		if !ok {
			return fmt.Errorf("bad -user %q, want name:passphrase", u)
		}
		gw.RegisterUser(name, core.UserAuth{MyProxyUser: name, Passphrase: pass})
		fmt.Printf("registered portal user %s on all shards\n", name)
	}

	fmt.Printf("Cyberaide onServe fleet gateway up (%d appliances)\n", opts.fleet)
	fmt.Printf("  portal       %s/\n", gw.BaseURL)
	fmt.Printf("  gateway      %s/gateway/stats\n", gw.BaseURL)
	for i, app := range gw.Fleet() {
		fmt.Printf("  shard-%d      %s/\n", i, app.BaseURL)
	}
	fmt.Println("press Ctrl-C to stop")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("\nshutting down fleet")
	return nil
}
