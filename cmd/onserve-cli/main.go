// Command onserve-cli drives a running onServe appliance from the shell:
// upload executables, discover and describe generated services, invoke
// them, and collect output.
//
//	onserve-cli -portal http://127.0.0.1:8080 upload -file pi.gsh -user alice -param digits:int
//	onserve-cli -portal ... list
//	onserve-cli -portal ... discover -pattern 'Pi%'
//	onserve-cli -portal ... invoke -service PiService -arg digits=100 -wait
//	onserve-cli -portal ... output -ticket inv-000001-abcdef
//	onserve-cli -portal ... trace -ticket inv-000001-abcdef
//	onserve-cli -portal ... -key tenant-secret audit -n 20
//
// When the appliance enforces tenancy, pass the API key with -key (or
// the ONSERVE_KEY environment variable); it travels as the X-Grid-Key
// header on every request, SOAP calls included.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/soap"
	"repro/internal/tenant"
	"repro/internal/uddi"
	"repro/internal/wsclient"
)

func main() {
	var portalURL, key string
	flag.StringVar(&portalURL, "portal", "http://127.0.0.1:8080", "appliance base URL")
	flag.StringVar(&key, "key", os.Getenv("ONSERVE_KEY"), "tenant API key sent as X-Grid-Key (default: $ONSERVE_KEY)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cli := newClient(key)
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "upload":
		err = cmdUpload(cli, portalURL, rest)
	case "list":
		err = cmdList(cli, portalURL)
	case "describe":
		err = cmdDescribe(cli, portalURL, rest)
	case "discover":
		err = cmdDiscover(cli, portalURL, rest)
	case "invoke":
		err = cmdInvoke(cli, portalURL, rest)
	case "status", "output", "cancel":
		err = cmdTicket(cli, portalURL, cmd, rest)
	case "trace":
		err = cmdTrace(cli, portalURL, rest)
	case "delete":
		err = cmdDelete(cli, portalURL, rest)
	case "audit":
		err = cmdAudit(cli, portalURL, rest)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "onserve-cli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: onserve-cli [-portal URL] [-key K] <command> [flags]
commands:
  upload   -file F -user U [-desc D] [-param name:type ...]
  list
  describe -service S
  discover -pattern P        (UDDI find, '%' wildcard)
  invoke   -service S [-arg k=v ...] [-wait]
  status   -ticket T
  output   -ticket T
  cancel   -ticket T
  trace    -ticket T
  delete   -service S
  audit    [-owner O] [-n N]  (tenancy audit log, needs -tenancy on the appliance)`)
}

// keyTransport stamps the tenant API key onto every outgoing request,
// so one -key flag covers JSON, multipart and SOAP traffic alike.
type keyTransport struct {
	key  string
	next http.RoundTripper
}

func (t *keyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	r.Header.Set(tenant.KeyHeader, t.key)
	return t.next.RoundTrip(r)
}

func newClient(key string) *http.Client {
	if key == "" {
		return http.DefaultClient
	}
	return &http.Client{Transport: &keyTransport{key: key, next: http.DefaultTransport}}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func cmdUpload(cli *http.Client, portalURL string, args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	file := fs.String("file", "", "gsh executable to upload")
	user := fs.String("user", "", "portal user (must be registered on the appliance)")
	desc := fs.String("desc", "", "service description")
	var params multiFlag
	fs.Var(&params, "param", "parameter as name:type (repeatable)")
	fs.Parse(args)
	if *file == "" || *user == "" {
		return fmt.Errorf("upload needs -file and -user")
	}
	content, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", filepath.Base(*file))
	if err != nil {
		return err
	}
	fw.Write(content)
	mw.WriteField("user", *user)
	mw.WriteField("description", *desc)
	for i, p := range params {
		name, typ, _ := strings.Cut(p, ":")
		if typ == "" {
			typ = "string"
		}
		mw.WriteField(fmt.Sprintf("paramName%d", i+1), name)
		mw.WriteField(fmt.Sprintf("paramType%d", i+1), typ)
	}
	mw.Close()
	resp, err := cli.Post(portalURL+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("upload failed (%d): %s", resp.StatusCode, body)
	}
	var rec uddi.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return err
	}
	fmt.Printf("published %s\n  key      %s\n  endpoint %s\n  wsdl     %s\n",
		rec.Name, rec.Key, rec.Endpoint, rec.WSDLURL)
	return nil
}

func cmdList(cli *http.Client, portalURL string) error {
	resp, err := cli.Get(portalURL + "/api/services")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var services []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&services); err != nil {
		return err
	}
	for _, s := range services {
		fmt.Printf("%-28v %-10v %v\n", s["service_name"], s["owner"], s["description"])
	}
	return nil
}

func cmdDescribe(cli *http.Client, portalURL string, args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	service := fs.String("service", "", "service name")
	fs.Parse(args)
	proxy, err := wsclient.ImportURL(portalURL+"/services/"+*service, cli)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s)\n%s\n", proxy.Def.Name, proxy.Def.Namespace, proxy.Def.Doc)
	for _, op := range proxy.Operations() {
		fmt.Printf("  %s(", op.Name)
		for i, p := range op.Params {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s %s", p.Name, p.Type)
		}
		fmt.Println(")")
	}
	return nil
}

func cmdDiscover(cli *http.Client, portalURL string, args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	pattern := fs.String("pattern", "%", "UDDI name pattern")
	fs.Parse(args)
	c := soap.Client{HTTP: cli}
	out, err := c.Call(portalURL+"/services/"+uddi.ServiceName, uddi.Namespace, "find",
		[]soap.Param{{Name: "pattern", Value: *pattern}}, nil)
	if err != nil {
		return err
	}
	recs, err := uddi.DecodeRecords(out)
	if err != nil {
		return err
	}
	for _, r := range recs {
		fmt.Printf("%-28s %s\n  %s\n", r.Name, r.Key, r.Endpoint)
	}
	if len(recs) == 0 {
		fmt.Println("no services match", *pattern)
	}
	return nil
}

func cmdInvoke(cli *http.Client, portalURL string, args []string) error {
	fs := flag.NewFlagSet("invoke", flag.ExitOnError)
	service := fs.String("service", "", "service name")
	wait := fs.Bool("wait", false, "block until the job finishes and print its output")
	var kvs multiFlag
	fs.Var(&kvs, "arg", "argument as key=value (repeatable)")
	fs.Parse(args)
	if *service == "" {
		return fmt.Errorf("invoke needs -service")
	}
	callArgs := map[string]string{}
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad -arg %q, want key=value", kv)
		}
		callArgs[k] = v
	}
	proxy, err := wsclient.ImportURL(portalURL+"/services/"+*service, cli)
	if err != nil {
		return err
	}
	ticket, err := proxy.Invoke("execute", callArgs)
	if err != nil {
		return err
	}
	fmt.Println("ticket:", ticket)
	if !*wait {
		return nil
	}
	out, err := proxy.Invoke("wait", map[string]string{"ticket": ticket})
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func cmdTicket(cli *http.Client, portalURL, cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	ticket := fs.String("ticket", "", "invocation ticket")
	fs.Parse(args)
	if *ticket == "" {
		return fmt.Errorf("%s needs -ticket", cmd)
	}
	var resp *http.Response
	var err error
	switch cmd {
	case "cancel":
		resp, err = cli.Post(portalURL+"/api/cancel?ticket="+*ticket, "", nil)
	default:
		resp, err = cli.Get(portalURL + "/api/" + cmd + "?ticket=" + *ticket)
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s failed (%d): %s", cmd, resp.StatusCode, body)
	}
	fmt.Println(strings.TrimSpace(string(body)))
	return nil
}

// cmdTrace fetches the invocation's span tree and renders a text
// waterfall: one line per span, indented by depth, with duration and
// the attributes that attribute the time (site, bytes, state).
func cmdTrace(cli *http.Client, portalURL string, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	ticket := fs.String("ticket", "", "invocation ticket")
	fs.Parse(args)
	if *ticket == "" {
		return fmt.Errorf("trace needs -ticket")
	}
	resp, err := cli.Get(portalURL + "/api/trace?ticket=" + *ticket)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace failed (%d): %s", resp.StatusCode, body)
	}
	var doc struct {
		Spans []struct {
			SpanID     string            `json:"span_id"`
			ParentID   string            `json:"parent_id"`
			Service    string            `json:"service"`
			Name       string            `json:"name"`
			DurationMS float64           `json:"duration_ms"`
			Status     string            `json:"status"`
			Message    string            `json:"message"`
			Attrs      map[string]string `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	if len(doc.Spans) == 0 {
		fmt.Println("no spans recorded (tracing off, or evicted from the ring)")
		return nil
	}
	depth := make(map[string]int, len(doc.Spans))
	for _, sp := range doc.Spans { // spans arrive start-sorted, parents first
		d := 0
		if sp.ParentID != "" {
			d = depth[sp.ParentID] + 1
		}
		depth[sp.SpanID] = d
		line := fmt.Sprintf("%*s%s/%s %.1fms", 2*d, "", sp.Service, sp.Name, sp.DurationMS)
		for _, k := range []string{"site", "bytes", "state", "cache", "ticket"} {
			if v, ok := sp.Attrs[k]; ok {
				line += " " + k + "=" + v
			}
		}
		if sp.Status == "error" {
			line += " ERROR"
			if sp.Message != "" {
				line += " (" + sp.Message + ")"
			}
		}
		fmt.Println(line)
	}
	return nil
}

func cmdDelete(cli *http.Client, portalURL string, args []string) error {
	fs := flag.NewFlagSet("delete", flag.ExitOnError)
	service := fs.String("service", "", "service name")
	fs.Parse(args)
	resp, err := cli.Post(portalURL+"/api/delete?name="+*service, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("delete failed (%d): %s", resp.StatusCode, body)
	}
	fmt.Println("deleted", *service)
	return nil
}

// cmdAudit prints the appliance's tenancy audit log, newest first.
func cmdAudit(cli *http.Client, portalURL string, args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	owner := fs.String("owner", "", "filter records to one owner (empty: all)")
	n := fs.Int("n", 50, "maximum records to print")
	fs.Parse(args)
	url := fmt.Sprintf("%s/api/audit?n=%d", portalURL, *n)
	if *owner != "" {
		url += "&owner=" + *owner
	}
	resp, err := cli.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("audit log unavailable (appliance running without -tenancy?)")
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("audit failed (%d): %s", resp.StatusCode, body)
	}
	var doc struct {
		Records []tenant.Record `json:"records"`
		Dropped uint64          `json:"dropped"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	if len(doc.Records) == 0 {
		fmt.Println("no audit records")
		return nil
	}
	for _, r := range doc.Records {
		line := fmt.Sprintf("%s %-10s %-7s %-22s %-12s wait=%.1fms latency=%.1fms",
			r.Time.Format("15:04:05.000"), r.Owner, r.Verb, r.Service, r.Outcome, r.WaitMS, r.LatencyMS)
		if r.Code != "" {
			line += " code=" + r.Code
		}
		if r.Ticket != "" {
			line += " ticket=" + r.Ticket
		}
		if r.TraceID != "" {
			line += " trace=" + r.TraceID
		}
		fmt.Println(line)
	}
	if doc.Dropped > 0 {
		fmt.Printf("(%d older records evicted from the ring)\n", doc.Dropped)
	}
	return nil
}
