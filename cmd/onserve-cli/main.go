// Command onserve-cli drives a running onServe appliance from the shell:
// upload executables, discover and describe generated services, invoke
// them, and collect output.
//
//	onserve-cli -portal http://127.0.0.1:8080 upload -file pi.gsh -user alice -param digits:int
//	onserve-cli -portal ... list
//	onserve-cli -portal ... discover -pattern 'Pi%'
//	onserve-cli -portal ... invoke -service PiService -arg digits=100 -wait
//	onserve-cli -portal ... output -ticket inv-000001-abcdef
//	onserve-cli -portal ... trace -ticket inv-000001-abcdef
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/soap"
	"repro/internal/uddi"
	"repro/internal/wsclient"
)

func main() {
	var portalURL string
	flag.StringVar(&portalURL, "portal", "http://127.0.0.1:8080", "appliance base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "upload":
		err = cmdUpload(portalURL, rest)
	case "list":
		err = cmdList(portalURL)
	case "describe":
		err = cmdDescribe(portalURL, rest)
	case "discover":
		err = cmdDiscover(portalURL, rest)
	case "invoke":
		err = cmdInvoke(portalURL, rest)
	case "status", "output", "cancel":
		err = cmdTicket(portalURL, cmd, rest)
	case "trace":
		err = cmdTrace(portalURL, rest)
	case "delete":
		err = cmdDelete(portalURL, rest)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "onserve-cli:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: onserve-cli [-portal URL] <command> [flags]
commands:
  upload   -file F -user U [-desc D] [-param name:type ...]
  list
  describe -service S
  discover -pattern P        (UDDI find, '%' wildcard)
  invoke   -service S [-arg k=v ...] [-wait]
  status   -ticket T
  output   -ticket T
  cancel   -ticket T
  trace    -ticket T
  delete   -service S`)
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func cmdUpload(portalURL string, args []string) error {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	file := fs.String("file", "", "gsh executable to upload")
	user := fs.String("user", "", "portal user (must be registered on the appliance)")
	desc := fs.String("desc", "", "service description")
	var params multiFlag
	fs.Var(&params, "param", "parameter as name:type (repeatable)")
	fs.Parse(args)
	if *file == "" || *user == "" {
		return fmt.Errorf("upload needs -file and -user")
	}
	content, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", filepath.Base(*file))
	if err != nil {
		return err
	}
	fw.Write(content)
	mw.WriteField("user", *user)
	mw.WriteField("description", *desc)
	for i, p := range params {
		name, typ, _ := strings.Cut(p, ":")
		if typ == "" {
			typ = "string"
		}
		mw.WriteField(fmt.Sprintf("paramName%d", i+1), name)
		mw.WriteField(fmt.Sprintf("paramType%d", i+1), typ)
	}
	mw.Close()
	resp, err := http.Post(portalURL+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("upload failed (%d): %s", resp.StatusCode, body)
	}
	var rec uddi.Record
	if err := json.Unmarshal(body, &rec); err != nil {
		return err
	}
	fmt.Printf("published %s\n  key      %s\n  endpoint %s\n  wsdl     %s\n",
		rec.Name, rec.Key, rec.Endpoint, rec.WSDLURL)
	return nil
}

func cmdList(portalURL string) error {
	resp, err := http.Get(portalURL + "/api/services")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var services []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&services); err != nil {
		return err
	}
	for _, s := range services {
		fmt.Printf("%-28v %-10v %v\n", s["service_name"], s["owner"], s["description"])
	}
	return nil
}

func cmdDescribe(portalURL string, args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	service := fs.String("service", "", "service name")
	fs.Parse(args)
	proxy, err := wsclient.ImportURL(portalURL+"/services/"+*service, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s)\n%s\n", proxy.Def.Name, proxy.Def.Namespace, proxy.Def.Doc)
	for _, op := range proxy.Operations() {
		fmt.Printf("  %s(", op.Name)
		for i, p := range op.Params {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s %s", p.Name, p.Type)
		}
		fmt.Println(")")
	}
	return nil
}

func cmdDiscover(portalURL string, args []string) error {
	fs := flag.NewFlagSet("discover", flag.ExitOnError)
	pattern := fs.String("pattern", "%", "UDDI name pattern")
	fs.Parse(args)
	var c soap.Client
	out, err := c.Call(portalURL+"/services/"+uddi.ServiceName, uddi.Namespace, "find",
		[]soap.Param{{Name: "pattern", Value: *pattern}}, nil)
	if err != nil {
		return err
	}
	recs, err := uddi.DecodeRecords(out)
	if err != nil {
		return err
	}
	for _, r := range recs {
		fmt.Printf("%-28s %s\n  %s\n", r.Name, r.Key, r.Endpoint)
	}
	if len(recs) == 0 {
		fmt.Println("no services match", *pattern)
	}
	return nil
}

func cmdInvoke(portalURL string, args []string) error {
	fs := flag.NewFlagSet("invoke", flag.ExitOnError)
	service := fs.String("service", "", "service name")
	wait := fs.Bool("wait", false, "block until the job finishes and print its output")
	var kvs multiFlag
	fs.Var(&kvs, "arg", "argument as key=value (repeatable)")
	fs.Parse(args)
	if *service == "" {
		return fmt.Errorf("invoke needs -service")
	}
	callArgs := map[string]string{}
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad -arg %q, want key=value", kv)
		}
		callArgs[k] = v
	}
	proxy, err := wsclient.ImportURL(portalURL+"/services/"+*service, nil)
	if err != nil {
		return err
	}
	ticket, err := proxy.Invoke("execute", callArgs)
	if err != nil {
		return err
	}
	fmt.Println("ticket:", ticket)
	if !*wait {
		return nil
	}
	out, err := proxy.Invoke("wait", map[string]string{"ticket": ticket})
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func cmdTicket(portalURL, cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	ticket := fs.String("ticket", "", "invocation ticket")
	fs.Parse(args)
	if *ticket == "" {
		return fmt.Errorf("%s needs -ticket", cmd)
	}
	var resp *http.Response
	var err error
	switch cmd {
	case "cancel":
		resp, err = http.Post(portalURL+"/api/cancel?ticket="+*ticket, "", nil)
	default:
		resp, err = http.Get(portalURL + "/api/" + cmd + "?ticket=" + *ticket)
	}
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s failed (%d): %s", cmd, resp.StatusCode, body)
	}
	fmt.Println(strings.TrimSpace(string(body)))
	return nil
}

// cmdTrace fetches the invocation's span tree and renders a text
// waterfall: one line per span, indented by depth, with duration and
// the attributes that attribute the time (site, bytes, state).
func cmdTrace(portalURL string, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	ticket := fs.String("ticket", "", "invocation ticket")
	fs.Parse(args)
	if *ticket == "" {
		return fmt.Errorf("trace needs -ticket")
	}
	resp, err := http.Get(portalURL + "/api/trace?ticket=" + *ticket)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace failed (%d): %s", resp.StatusCode, body)
	}
	var doc struct {
		Spans []struct {
			SpanID     string            `json:"span_id"`
			ParentID   string            `json:"parent_id"`
			Service    string            `json:"service"`
			Name       string            `json:"name"`
			DurationMS float64           `json:"duration_ms"`
			Status     string            `json:"status"`
			Message    string            `json:"message"`
			Attrs      map[string]string `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	if len(doc.Spans) == 0 {
		fmt.Println("no spans recorded (tracing off, or evicted from the ring)")
		return nil
	}
	depth := make(map[string]int, len(doc.Spans))
	for _, sp := range doc.Spans { // spans arrive start-sorted, parents first
		d := 0
		if sp.ParentID != "" {
			d = depth[sp.ParentID] + 1
		}
		depth[sp.SpanID] = d
		line := fmt.Sprintf("%*s%s/%s %.1fms", 2*d, "", sp.Service, sp.Name, sp.DurationMS)
		for _, k := range []string{"site", "bytes", "state", "cache", "ticket"} {
			if v, ok := sp.Attrs[k]; ok {
				line += " " + k + "=" + v
			}
		}
		if sp.Status == "error" {
			line += " ERROR"
			if sp.Message != "" {
				line += " (" + sp.Message + ")"
			}
		}
		fmt.Println(line)
	}
	return nil
}

func cmdDelete(portalURL string, args []string) error {
	fs := flag.NewFlagSet("delete", flag.ExitOnError)
	service := fs.String("service", "", "service name")
	fs.Parse(args)
	resp, err := http.Post(portalURL+"/api/delete?name="+*service, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("delete failed (%d): %s", resp.StatusCode, body)
	}
	fmt.Println("deleted", *service)
	return nil
}
