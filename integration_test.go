package repro

// Whole-system integration tests: the five-layer stack of the paper's
// Fig. 2 exercised exactly as a deployment would be, across reboot and
// redeployment boundaries.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/gridenv"
	"repro/internal/gridsim"
	"repro/internal/soap"
	"repro/internal/uddi"
	"repro/internal/vtime"
	"repro/internal/wsclient"
	"repro/internal/wsdl"
)

func TestIntegrationFullLifecycleAcrossReboot(t *testing.T) {
	clk := vtime.NewScaled(20000)
	env, err := gridenv.Start(gridenv.Options{
		Clock: clk,
		Sites: []gridsim.SiteConfig{{Name: "siteA", Nodes: 2, CoresPerNode: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		t.Fatal(err)
	}

	dbDir := t.TempDir()
	img, err := appliance.BuildImage(appliance.Config{
		Endpoints:    env.Endpoints(),
		Clock:        clk,
		DBDir:        dbDir,
		PollInterval: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	// First boot: upload and run once.
	app, err := img.Boot(nil)
	if err != nil {
		t.Fatal(err)
	}
	app.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})
	if _, err := app.OnServe.UploadAndGenerate("alice", "persist.gsh", "survives reboots",
		[]wsdl.ParamDef{{Name: "n", Type: wsdl.TypeInt}},
		[]byte("echo round ${n}\ncompute 500ms\n")); err != nil {
		t.Fatal(err)
	}
	out, err := app.OnServe.ExecuteAndWait("PersistService", map[string]string{"n": "1"})
	if err != nil || out != "round 1\n" {
		t.Fatalf("first run: %q %v", out, err)
	}
	if err := app.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Second boot from the same image + database: the stored executable
	// must be redeployable without re-upload.
	app2, err := img.Boot(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer app2.Shutdown()
	app2.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})

	// The database carried the record across the reboot...
	info, err := app2.OnServe.ServiceInfo("PersistService")
	if err != nil {
		t.Fatal(err)
	}
	if info.Description != "survives reboots" || len(info.Params) != 1 {
		t.Fatalf("info %+v", info)
	}
	// ...and RedeployAll brings the service (and its UDDI record) back.
	n, err := app2.OnServe.RedeployAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("redeployed %d services", n)
	}
	// Idempotent: a second call finds everything live already.
	if n, err := app2.OnServe.RedeployAll(); err != nil || n != 0 {
		t.Fatalf("second redeploy: n=%d err=%v", n, err)
	}
	out, err = app2.OnServe.ExecuteAndWait("PersistService", map[string]string{"n": "2"})
	if err != nil || out != "round 2\n" {
		t.Fatalf("post-reboot run: %q %v", out, err)
	}
	if app2.Registry.Len() != 1 {
		t.Fatal("uddi record not republished")
	}
}

func TestIntegrationDiscoveryPipeline(t *testing.T) {
	clk := vtime.NewScaled(20000)
	env, err := gridenv.Start(gridenv.Options{
		Clock: clk,
		Sites: []gridsim.SiteConfig{{Name: "siteA", Nodes: 2, CoresPerNode: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.AddUser("alice", "pw", 0)
	img, _ := appliance.BuildImage(appliance.Config{
		Endpoints: env.Endpoints(), Clock: clk, PollInterval: 2 * time.Second,
	})
	app, err := img.Boot(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Shutdown()
	app.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})

	// Publish three services, discover by pattern, invoke the match.
	for _, name := range []string{"alphafold.gsh", "alphasort.gsh", "betareduce.gsh"} {
		if _, err := app.OnServe.UploadAndGenerate("alice", name, "", nil, []byte("echo ran "+name+"\n")); err != nil {
			t.Fatal(err)
		}
	}
	var c soap.Client
	found, err := c.Call(app.RegistryURL(), uddi.Namespace, "find",
		[]soap.Param{{Name: "pattern", Value: "Alpha%"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := uddi.DecodeRecords(found)
	if err != nil || len(recs) != 2 {
		t.Fatalf("discovered %d services: %v", len(recs), err)
	}
	proxy, err := wsclient.ImportURL(recs[0].Endpoint, nil)
	if err != nil {
		t.Fatal(err)
	}
	ticket, err := proxy.Invoke("execute", nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := proxy.Invoke("wait", map[string]string{"ticket": ticket})
	if err != nil || !strings.HasPrefix(out, "ran alpha") {
		t.Fatalf("output %q err %v", out, err)
	}
}
