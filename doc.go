// Package repro is a from-scratch Go reproduction of "Cyberaide onServe:
// Software as a Service on Production Grids" (Kurze et al., ICPP 2010).
//
// The paper's middleware translates the SaaS model into the
// Job-Submission-Execution model of production Grids: uploaded
// executables become deployed Web services whose invocations are staged,
// submitted and tentatively polled on the Grid. See DESIGN.md for the
// system inventory, EXPERIMENTS.md for the paper-versus-measured record,
// and bench_test.go in this directory for one benchmark per figure the
// paper reports.
package repro
