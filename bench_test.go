package repro

// One benchmark per table/figure of the paper's evaluation (Section
// VIII), plus the design-choice ablations DESIGN.md calls out. Every
// iteration runs the corresponding experiment end-to-end — simulated
// TeraGrid, appliance, portal, SOAP services — on a time-dilated clock,
// and reports the headline virtual-time quantity next to the wall-clock
// cost of regenerating it.
//
//	go test -bench=. -benchmem

import (
	"testing"
	"time"

	"repro/internal/experiments"
)

// benchScale trades figure smoothness for benchmark wall time.
const benchScale = 500

func benchOpts() experiments.Options {
	return experiments.Options{Scale: benchScale}
}

// BenchmarkFig6SmallFileInvocation regenerates Figure 6: Web-service
// execution of a small file; traffic dominated by the credential
// exchange, periodic poll-induced disk writes.
func BenchmarkFig6SmallFileInvocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["duration_s"], "virtual_s/op")
		b.ReportMetric(res.Summary["net_out_total_b"], "grid_bytes/op")
	}
}

// BenchmarkFig7LargeFileInvocation regenerates Figure 7: the ~5MB
// executable whose staging saturates the ~85 KB/s WAN for about a minute.
func BenchmarkFig7LargeFileInvocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["upload_plateau_s"], "upload_virtual_s/op")
		b.ReportMetric(res.Summary["upload_rate_kbps"], "upload_KBps")
	}
}

// BenchmarkFig8UploadAndGenerate regenerates Figure 8: portal upload over
// the 1000 Mbit LAN, service generation, and the double disk write.
func BenchmarkFig8UploadAndGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary["duration_s"], "virtual_s/op")
		b.ReportMetric(res.Summary["disk_write_total_b"], "disk_bytes/op")
	}
}

// BenchmarkScalabilityInvokeWAN regenerates the §VIII-D invoke row at
// concurrency 4: simultaneous stagings contending on the WAN.
func BenchmarkScalabilityInvokeWAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scalability(benchOpts(), []int{4}, 512)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MakespanS, "makespan_virtual_s/op")
	}
}

// BenchmarkScalabilityUploadLAN regenerates the §VIII-D upload row at
// concurrency 4: simultaneous portal uploads on the LAN.
func BenchmarkScalabilityUploadLAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scalability(benchOpts(), []int{4}, 512)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].MakespanS, "makespan_virtual_s/op")
	}
}

// BenchmarkManySmallJobs regenerates the §VIII-B observation: many small
// jobs flow through the middleware efficiently.
func BenchmarkManySmallJobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.SmallJobs(benchOpts(), 20, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JobsPerMinute, "jobs_per_virtual_min")
	}
}

// BenchmarkAblationDoubleWrite compares the paper's temp-file+DB store
// path against direct streaming (§VIII-D3).
func BenchmarkAblationDoubleWrite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationDoubleWrite(benchOpts(), 1024)
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "double-write", "stock", "disk_write_total_kb", "stock_disk_kb")
		report(b, res, "double-write", "direct", "disk_write_total_kb", "direct_disk_kb")
	}
}

// BenchmarkAblationStagingCache compares per-invocation re-upload against
// the content-hash staging cache (§VIII-B's suggested improvement).
func BenchmarkAblationStagingCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationStagingCache(benchOpts(), 512, 3)
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "staging-cache", "stock", "net_out_total_kb", "stock_wan_kb")
		report(b, res, "staging-cache", "cache", "net_out_total_kb", "cache_wan_kb")
	}
}

// BenchmarkAblationPolling sweeps the tentative-poll interval.
func BenchmarkAblationPolling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPolling(benchOpts(),
			[]time.Duration{3 * time.Second, 30 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "poll-interval", "3s", "poll_disk_write_kb", "poll3s_disk_kb")
		report(b, res, "poll-interval", "30s", "poll_disk_write_kb", "poll30s_disk_kb")
	}
}

// BenchmarkAblationCompression sweeps the database compression cost
// model (the Fig. 6 decompress CPU peak's knob).
func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCompression(benchOpts(), 2048)
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "compression", "fast-8MBps", "upload_cpu_total_s", "fast_cpu_s")
		report(b, res, "compression", "slow-512KBps", "upload_cpu_total_s", "slow_cpu_s")
	}
}

// BenchmarkInvokeHotPathCold runs the paper-faithful invocation pipeline
// (fresh MyProxy logon, stats fetch and blob decompress per invocation)
// — the baseline the warm benchmark is compared against.
func BenchmarkInvokeHotPathCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHotPath(benchOpts(), 256, 3, "stock")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "hot-path", "stock", "per_invoke_s", "virtual_s/invoke")
		report(b, res, "hot-path", "stock", "net_out_total_kb", "grid_kb")
	}
}

// BenchmarkInvokeHotPathWarm runs the same workload with the session
// cache, stats TTL and blob LRU on: repeat invocations skip the logon,
// the stats round-trip and the decompress.
func BenchmarkInvokeHotPathWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHotPath(benchOpts(), 256, 3, "warm")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "hot-path", "warm", "per_invoke_s", "virtual_s/invoke")
		report(b, res, "hot-path", "warm", "net_out_total_kb", "grid_kb")
	}
}

// BenchmarkAblationSessionCache isolates the per-owner session cache
// lever of the hot-path overhaul.
func BenchmarkAblationSessionCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHotPath(benchOpts(), 256, 3, "stock", "session-cache")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "hot-path", "stock", "net_out_total_kb", "stock_grid_kb")
		report(b, res, "hot-path", "session-cache", "net_out_total_kb", "cached_grid_kb")
	}
}

// BenchmarkAblationStatsTTL isolates the grid-stats snapshot TTL lever.
func BenchmarkAblationStatsTTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHotPath(benchOpts(), 256, 3, "stock", "stats-ttl")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "hot-path", "stock", "net_out_total_kb", "stock_grid_kb")
		report(b, res, "hot-path", "stats-ttl", "net_out_total_kb", "ttl_grid_kb")
	}
}

// BenchmarkAblationBlobLRU isolates the decompressed-blob LRU lever (the
// Fig. 6 repeat-decompress CPU peak).
func BenchmarkAblationBlobLRU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationHotPath(benchOpts(), 256, 3, "stock", "blob-lru")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "hot-path", "stock", "cpu_total_s", "stock_cpu_s")
		report(b, res, "hot-path", "blob-lru", "cpu_total_s", "lru_cpu_s")
	}
}

// BenchmarkPollHubStock runs the output-collection workload (many
// simultaneous mostly-silent invocations) under the paper's
// one-poller-goroutine-per-invocation loop: one status round-trip and
// one full stdout re-fetch per invocation per tick.
func BenchmarkPollHubStock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPollHub(benchOpts(), 16, "stock")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "poll-hub", "stock", "status_rpcs", "status_rpcs")
		report(b, res, "poll-hub", "stock", "output_bytes_kb", "output_kb")
	}
}

// BenchmarkPollHubSharded runs the same workload under the sharded poll
// hub: one batched status RPC per shard tick, stdout fetched only when
// its version changed.
func BenchmarkPollHubSharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPollHub(benchOpts(), 16, "hub")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "poll-hub", "hub", "status_rpcs", "status_rpcs")
		report(b, res, "poll-hub", "hub", "output_bytes_kb", "output_kb")
		report(b, res, "poll-hub", "hub", "output_not_modified", "not_modified")
	}
}

// BenchmarkPushEvents runs the same workload under the push collector:
// state transitions and output bumps arrive over one gatekeeper event
// stream per session, so steady-state status RPCs collapse to (at most)
// the handful spent bootstrapping streams.
func BenchmarkPushEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPollHub(benchOpts(), 16, "push")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "poll-hub", "push", "status_rpcs", "status_rpcs")
		report(b, res, "poll-hub", "push", "events_delivered", "events")
		report(b, res, "poll-hub", "push", "detect_latency_s", "detect_s")
	}
}

// BenchmarkSubmitStock runs the submission workload (a simultaneous
// cold burst of one service) under the paper's front-end: one stats
// RPC, one WAN staging upload and one submit RPC per invocation.
func BenchmarkSubmitStock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSubmit(benchOpts(), 16, "stock")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "submit", "stock", "uploads", "uploads")
		report(b, res, "submit", "stock", "submit_rpcs", "submit_rpcs")
		report(b, res, "submit", "stock", "stats_rpcs", "stats_rpcs")
	}
}

// BenchmarkSubmitCoalesced runs the same burst under the batched
// front-end: coalesced staging, the submit hub's windowed batch RPC,
// and the stats singleflight.
func BenchmarkSubmitCoalesced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationSubmit(benchOpts(), 16, "batched")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "submit", "batched", "uploads", "uploads")
		report(b, res, "submit", "batched", "uploads_coalesced", "coalesced")
		report(b, res, "submit", "batched", "submit_rpcs", "submit_rpcs")
		report(b, res, "submit", "batched", "stats_rpcs", "stats_rpcs")
	}
}

// BenchmarkStageStock runs the staging data-plane ablation under the
// paper's monolithic uncompressed PUT: the whole executable crosses the
// WAN on every cold staging and again in full after any fault.
func BenchmarkStageStock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationStage(benchOpts(), 256, "stock")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "stage-cold", "stock", "stage_s", "stage_virtual_s")
		report(b, res, "stage-cold", "stock", "wan_wire_b", "wan_wire_b")
		report(b, res, "stage-resume", "stock", "retry_wire_b", "retry_wire_b")
	}
}

// BenchmarkStageChunked runs the same workload with chunked
// content-addressed staging shipping the stored gzip stream: fewer cold
// wire bytes by the payload's gzip ratio, and a faulted transfer resumes
// from its committed chunks.
func BenchmarkStageChunked(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationStage(benchOpts(), 256, "chunked-gzip")
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "stage-cold", "chunked-gzip", "stage_s", "stage_virtual_s")
		report(b, res, "stage-cold", "chunked-gzip", "wan_wire_b", "wan_wire_b")
		report(b, res, "stage-cold", "chunked-gzip", "chunks_shipped", "chunks_shipped")
		report(b, res, "stage-resume", "chunked", "retry_wire_b", "retry_wire_b")
	}
}

// BenchmarkAblationWALGroupCommit compares the stock one-write-per-put
// WAL path with batched group commit (real time, on-disk WAL).
func BenchmarkAblationWALGroupCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationGroupCommit(64, 8, 16)
		if err != nil {
			b.Fatal(err)
		}
		report(b, res, "group-commit", "stock", "wal_writes", "stock_wal_writes")
		report(b, res, "group-commit", "group", "wal_writes", "group_wal_writes")
		report(b, res, "group-commit", "group", "wal_syncs", "group_wal_syncs")
	}
}

// BenchmarkSchedulerPolicies runs the gridsim policy ablation: the same
// mixed workload under strict FCFS, aggressive backfill, and
// conservative backfill with reservations.
func BenchmarkSchedulerPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Moderate dilation: the workload's walltime slack (5 virtual
		// seconds) must stay above host scheduling jitter.
		res, err := experiments.SchedulerPolicies(300)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.MakespanS, row.Policy+"_makespan_s")
		}
	}
}

// BenchmarkBaselineJSE regenerates the motivation comparison: raw JSE
// access versus the SaaS path for the same job over the same WAN.
func BenchmarkBaselineJSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.BaselineJSE(benchOpts(), 256)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Model {
			case "jse-direct":
				b.ReportMetric(row.LatencyS, "direct_virtual_s")
			case "onserve-saas":
				b.ReportMetric(row.LatencyS, "saas_virtual_s")
			}
		}
	}
}

func report(b *testing.B, res *experiments.AblationResult, study, variant, metric, unit string) {
	for _, row := range res.Rows {
		if row.Study == study && row.Variant == variant && row.Metric == metric {
			b.ReportMetric(row.Value, unit)
			return
		}
	}
	b.Fatalf("missing %s/%s/%s", study, variant, metric)
}
