#!/bin/sh
# Tier-1 verification: vet, build, and the full test suite under the
# race detector. -short skips nothing today but leaves room for future
# long-haul tests to opt out of CI.
set -eux

cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race -short ./...
