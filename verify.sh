#!/bin/sh
# Tier-1 verification: vet, build, and the full test suite under the
# race detector. -short skips nothing today but leaves room for future
# long-haul tests to opt out of CI.
set -eux

cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed:" "$unformatted" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race -short ./...
# The invocation collectors (per-invocation pollers, the sharded poll
# hub, and the push collector — event streams racing cancels, watchdog
# kills, and the hub-fallback handover; the gridsim event bus fanning
# out under concurrent publishers), the submission front-end (coalesced
# staging, submit hub, batch RPCs), the WAL (sharded segmented layout:
# the blobdb crash-recovery suites, every-byte truncation sweeps,
# fault-injected close/fsync paths, and puts/gets racing the background
# compactor and Close), the chunked staging data
# plane (shared chunk stores, pipelined chunk PUTs), the shaped links
# under it, the tracing subsystem (one collector shared by every
# service, spans annotated from watchdog and poller concurrently,
# portal export under load), and the placement layer (parallel
# possession probes, TTL cache + singleflight, background replicator
# workers — the agent carries the batched probe client), and the fleet
# gateway (concurrent bursts racing a mid-burst appliance kill and
# rejoin: health FSM transitions fed by probes and proxies at once,
# the replicated UDDI view written by peer pushes while resolves read
# it), and the tenant control plane (concurrent admits racing quota
# release, key rotation mid-burst, DRR wakeups racing timeouts) are
# the concurrency hot spots: run their packages fresh
# (-count=1 defeats the test cache) so cached "ok" lines can never
# mask a newly introduced race.
go test -race -count=1 ./internal/core ./internal/blobdb ./internal/cyberaide ./internal/gram ./internal/gridsim ./internal/gridftp ./internal/netsim ./internal/portal ./internal/soap ./internal/trace ./internal/gateway ./internal/tenant

# Fuzzers run their seed corpora as regular tests, but exercise the
# mutation engine briefly too: the admission edge parses attacker
# bytes (the key header) and evaluates attacker patterns (policy
# globs), so both must never panic.
go test -run='^$' -fuzz=FuzzKeyHeader -fuzztime=5s ./internal/tenant
go test -run='^$' -fuzz=FuzzPolicyMatch -fuzztime=5s ./internal/tenant
