// Paramsweep: the workload the paper recommends for onServe — "a lot of
// relatively small files" (§VIII-B). One executable is uploaded once;
// its generated Web service is then invoked for every point of a
// parameter sweep, each invocation becoming one Grid job. The example
// reports throughput and where the jobs landed on the simulated TeraGrid.
//
//	go run ./examples/paramsweep
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/gridenv"
	"repro/internal/vtime"
	"repro/internal/wsclient"
	"repro/internal/wsdl"
)

const sweepProgram = `# one cell of a parameter study
compute 1s
echo cell alpha=${alpha} beta=${beta} energy=-${alpha}${beta}
write cell-${alpha}-${beta}.dat 512
`

func main() {
	clk := vtime.NewScaled(2000)
	env, err := gridenv.Start(gridenv.Options{Clock: clk}) // full 11-site TeraGrid
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		log.Fatal(err)
	}
	img, err := appliance.BuildImage(appliance.Config{
		Endpoints:    env.Endpoints(),
		Clock:        clk,
		PollInterval: 3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := img.Boot(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Shutdown()
	app.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})

	// Upload once through the Go API (the portal form does the same).
	if _, err := app.OnServe.UploadAndGenerate("alice", "sweepcell.gsh",
		"one cell of the alpha/beta parameter study",
		[]wsdl.ParamDef{
			{Name: "alpha", Type: wsdl.TypeInt},
			{Name: "beta", Type: wsdl.TypeInt},
		},
		[]byte(sweepProgram)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("uploaded sweepcell.gsh -> SweepcellService")

	proxy, err := wsclient.ImportURL(app.BaseURL+"/services/SweepcellService", nil)
	if err != nil {
		log.Fatal(err)
	}

	// 4x4 sweep, eight concurrent clients.
	const alphas, betas, workers = 4, 4, 8
	type cell struct{ alpha, beta int }
	cells := make(chan cell, alphas*betas)
	for a := 1; a <= alphas; a++ {
		for b := 1; b <= betas; b++ {
			cells <- cell{a, b}
		}
	}
	close(cells)

	start := clk.Now()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []string
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range cells {
				ticket, err := proxy.Invoke("execute", map[string]string{
					"alpha": strconv.Itoa(c.alpha),
					"beta":  strconv.Itoa(c.beta),
				})
				if err != nil {
					log.Fatal(err)
				}
				out, err := proxy.Invoke("wait", map[string]string{"ticket": ticket})
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				results = append(results, strings.TrimSpace(out))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := clk.Now().Sub(start)

	fmt.Printf("%d sweep cells completed in %.1f virtual seconds (%.1f jobs/min)\n",
		len(results), elapsed.Seconds(), float64(len(results))/elapsed.Minutes())
	for _, r := range results[:3] {
		fmt.Println(" ", r)
	}
	fmt.Println("  ...")

	fmt.Println("grid job distribution:")
	for _, st := range env.Grid.Stats() {
		if st.Completed > 0 {
			fmt.Printf("  %-14s %3d jobs\n", st.Name, st.Completed)
		}
	}
}
