// Dataprocessing: a service over staged input data. The owner stages a
// corpus onto the Grid through the Cyberaide agent (the JSE side), then
// publishes a processing service whose every invocation declares the
// corpus as stage-in; the gsh job reads and processes it on the worker
// node. This is the data-intensive pattern the paper's production-Grid
// audience ran: big inputs live on the Grid, only the service call
// crosses the user's network.
//
//	go run ./examples/dataprocessing
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/gridenv"
	"repro/internal/vtime"
	"repro/internal/wsclient"
	"repro/internal/wsdl"
)

const analyzer = `# corpus analyser: CPU proportional to input size
read corpus.txt
process corpus.txt 500
echo analysis pass ${pass} complete
write report-${pass}.txt 2048
`

func main() {
	clk := vtime.NewScaled(2000)
	env, err := gridenv.Start(gridenv.Options{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		log.Fatal(err)
	}

	img, err := appliance.BuildImage(appliance.Config{
		Endpoints:    env.Endpoints(),
		Clock:        clk,
		PollInterval: 3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := img.Boot(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Shutdown()
	app.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})

	// 1. Stage the corpus through the agent (the JSE side of the house).
	sess, err := app.Agent.Authenticate("alice", "pw", time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	corpus := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog\n", 20_000))
	fmt.Printf("staging %.1f KB corpus to every site...\n", float64(len(corpus))/1024)
	for _, site := range app.Agent.Sites() {
		if _, err := app.Agent.Upload(sess.ID, site, "corpus.txt", corpus); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Publish the analysis service and declare its stage-in data.
	if _, err := app.OnServe.UploadAndGenerate("alice", "analyzer.gsh",
		"corpus analyser", []wsdl.ParamDef{{Name: "pass", Type: wsdl.TypeInt}},
		[]byte(analyzer)); err != nil {
		log.Fatal(err)
	}
	if err := app.OnServe.SetStageIn("AnalyzerService", []string{"corpus.txt"}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("published AnalyzerService (stage-in: corpus.txt)")

	// 3. Invoke it like any Web service; only SOAP calls cross our link.
	proxy, err := wsclient.ImportURL(app.BaseURL+"/services/AnalyzerService", nil)
	if err != nil {
		log.Fatal(err)
	}
	for pass := 1; pass <= 2; pass++ {
		start := clk.Now()
		ticket, err := proxy.Invoke("execute", map[string]string{"pass": fmt.Sprint(pass)})
		if err != nil {
			log.Fatal(err)
		}
		out, err := proxy.Invoke("wait", map[string]string{"ticket": ticket})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pass %d (%.0f virtual s):\n%s", pass, clk.Now().Sub(start).Seconds(), indent(out))
	}
	fmt.Println("reports written on the grid; fetch with the outputFile operation if needed")
}

func indent(s string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		sb.WriteString("  " + line + "\n")
	}
	return sb.String()
}
