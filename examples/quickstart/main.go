// Quickstart: the whole SaaS-on-Grid loop in one process.
//
// It boots a simulated TeraGrid, builds and boots the Cyberaide onServe
// appliance against it, uploads a tiny gsh executable through the portal
// (Use Scenario A), then discovers the generated Web service in UDDI,
// imports its WSDL, invokes it, and prints the Grid job's output (Use
// Scenario B).
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"mime/multipart"
	"net/http"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/gridenv"
	"repro/internal/soap"
	"repro/internal/uddi"
	"repro/internal/vtime"
	"repro/internal/wsclient"
)

const program = `# estimate pi badly but enthusiastically
compute 2s
echo pi is roughly 3.${digits}
write estimate.dat 128
`

func main() {
	// A scaled clock makes the grid job's 2s compute finish instantly.
	clk := vtime.NewScaled(1000)

	// 1. The production grid: sites, GRAM, GridFTP, MyProxy, CA.
	env, err := gridenv.Start(gridenv.Options{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	if _, err := env.AddUser("alice", "s3cret", 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid up: %d sites, gatekeeper at %s\n", len(env.Grid.SiteNames()), env.GramURL)

	// 2. Build and boot the onServe appliance.
	img, err := appliance.BuildImage(appliance.Config{
		Endpoints:    env.Endpoints(),
		Clock:        clk,
		PollInterval: 3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := img.Boot(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Shutdown()
	app.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "s3cret"})
	fmt.Printf("appliance up: portal at %s\n", app.BaseURL)

	// 3. Use Scenario A: upload the executable through the portal form.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", "pi.gsh")
	io.WriteString(fw, program)
	mw.WriteField("user", "alice")
	mw.WriteField("description", "enthusiastic pi estimator")
	mw.WriteField("paramName1", "digits")
	mw.WriteField("paramType1", "int")
	mw.Close()
	resp, err := http.Post(app.BaseURL+"/upload", mw.FormDataContentType(), &buf)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("upload failed: %d", resp.StatusCode)
	}
	fmt.Println("uploaded pi.gsh -> PiService generated and published")

	// 4. Use Scenario B: discover via UDDI, wsimport the WSDL, invoke.
	var sc soap.Client
	found, err := sc.Call(app.RegistryURL(), uddi.Namespace, "find",
		[]soap.Param{{Name: "pattern", Value: "Pi%"}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := uddi.DecodeRecords(found)
	if err != nil || len(recs) == 0 {
		log.Fatalf("service not found in UDDI: %v", err)
	}
	fmt.Printf("discovered %s at %s\n", recs[0].Name, recs[0].Endpoint)

	proxy, err := wsclient.ImportURL(recs[0].Endpoint, nil)
	if err != nil {
		log.Fatal(err)
	}
	ticket, err := proxy.Invoke("execute", map[string]string{"digits": "14159"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invoked execute -> ticket %s (job runs on the grid)\n", ticket)

	out, err := proxy.Invoke("wait", map[string]string{"ticket": ticket})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid job output: %s", out)
	fmt.Println("quickstart complete")
}
