// Multiuser: "the access layer can be deployed locally by a user, or
// deployed in a shared remote location and used by multiple users"
// (paper §V). Three users with distinct Grid identities share one
// appliance: each stores credentials in MyProxy, uploads an executable,
// and invokes the generated services — including each other's, since a
// published service executes under its owner's delegated credential.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/gridenv"
	"repro/internal/vtime"
	"repro/internal/wsclient"
	"repro/internal/wsdl"
)

func main() {
	clk := vtime.NewScaled(2000)
	env, err := gridenv.Start(gridenv.Options{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()

	users := []string{"alice", "bob", "carol"}
	for _, u := range users {
		if _, err := env.AddUser(u, u+"-pass", 0); err != nil {
			log.Fatal(err)
		}
	}

	img, err := appliance.BuildImage(appliance.Config{
		Endpoints:    env.Endpoints(),
		Clock:        clk,
		PollInterval: 3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := img.Boot(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Shutdown()
	for _, u := range users {
		app.OnServe.RegisterUser(u, core.UserAuth{MyProxyUser: u, Passphrase: u + "-pass"})
	}
	fmt.Printf("shared appliance at %s serving %d users\n", app.BaseURL, len(users))

	// Each user uploads their own tool concurrently.
	var wg sync.WaitGroup
	for _, u := range users {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			program := fmt.Sprintf("compute 1s\necho %s-tool ran for ${caller}\n", u)
			if _, err := app.OnServe.UploadAndGenerate(u, u+"tool.gsh",
				u+"'s analysis tool",
				[]wsdl.ParamDef{{Name: "caller", Type: wsdl.TypeString}},
				[]byte(program)); err != nil {
				log.Fatal(err)
			}
		}(u)
	}
	wg.Wait()
	services, _ := app.OnServe.Services()
	fmt.Println("published services:")
	for _, s := range services {
		fmt.Printf("  %-18s owner=%s\n", s.ServiceName, s.Owner)
	}

	// Everyone invokes everyone's service.
	type call struct{ user, service string }
	var calls []call
	for _, u := range users {
		for _, s := range services {
			calls = append(calls, call{u, s.ServiceName})
		}
	}
	results := make([]string, len(calls))
	for i, c := range calls {
		wg.Add(1)
		go func(i int, c call) {
			defer wg.Done()
			proxy, err := wsclient.ImportURL(app.BaseURL+"/services/"+c.service, nil)
			if err != nil {
				log.Fatal(err)
			}
			ticket, err := proxy.Invoke("execute", map[string]string{"caller": c.user})
			if err != nil {
				log.Fatal(err)
			}
			out, err := proxy.Invoke("wait", map[string]string{"ticket": ticket})
			if err != nil {
				log.Fatal(err)
			}
			results[i] = fmt.Sprintf("%s invoked %-18s -> %s", c.user, c.service, strings.TrimSpace(out))
		}(i, c)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(" ", r)
	}

	// Each job ran under its service owner's Grid identity.
	fmt.Println("\ngrid accounting (jobs per identity):")
	perOwner := map[string]int{}
	for _, inv := range app.OnServe.Invocations() {
		job, err := env.Grid.Job(inv.JobID)
		if err == nil {
			perOwner[job.Desc.Owner]++
		}
	}
	for owner, n := range perOwner {
		fmt.Printf("  %-24s %d jobs\n", owner, n)
	}
}
