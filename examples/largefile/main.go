// Largefile: the Fig. 7 scenario as a library user would hit it — a
// ~5 MB executable whose staging saturates the ~85 KB/s WAN path to the
// Grid for about a minute, then runs quickly. The example shapes the
// appliance's grid link with netsim, measures the staging plateau on the
// appliance host, and shows how the staging cache (the paper's suggested
// improvement) removes the cost for the second invocation.
//
//	go run ./examples/largefile
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/gridenv"
	"repro/internal/gsh"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/vtime"
	"repro/internal/wsdl"
)

func main() {
	clk := vtime.NewScaled(200)
	rec := metrics.NewRecorder(clk, 3*time.Second)
	probe := metrics.NewProbe(rec)
	wan := netsim.WAN(clk) // ~85 KB/s, the paper's measured path

	env, err := gridenv.Start(gridenv.Options{Clock: clk, Profile: wan})
	if err != nil {
		log.Fatal(err)
	}
	defer env.Close()
	if _, err := env.AddUser("alice", "pw", 0); err != nil {
		log.Fatal(err)
	}

	dialer := &netsim.Dialer{Profile: wan, Probe: probe}
	img, err := appliance.BuildImage(appliance.Config{
		Endpoints: env.Endpoints(),
		Clock:     clk,
		Probe:     probe,
		Cost:      metrics.DefaultCost(),
		GridHTTP:  &http.Client{Transport: &http.Transport{DialContext: dialer.DialContext}},
		MyProxyDial: func(network, addr string) (net.Conn, error) {
			return dialer.DialContext(context.Background(), network, addr)
		},
		PollInterval: 9 * time.Second,
		StagingCache: true, // demonstrate the paper's suggested improvement
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := img.Boot(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Shutdown()
	app.OnServe.RegisterUser("alice", core.UserAuth{MyProxyUser: "alice", Passphrase: "pw"})

	// A ~5MB executable: mostly incompressible padding, as a real user
	// binary would be.
	program := gsh.Pad([]byte("compute 2s\necho big job done\n"), 5<<20)
	if _, err := app.OnServe.UploadAndGenerate("alice", "bigsim.gsh",
		"5MB simulation binary", []wsdl.ParamDef{}, program); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded bigsim.gsh (%.1f MB) -> BigsimService\n", float64(len(program))/(1<<20))

	for run := 1; run <= 2; run++ {
		start := clk.Now()
		out, err := app.OnServe.ExecuteAndWait("BigsimService", nil)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := clk.Now().Sub(start)
		fmt.Printf("invocation %d: %q in %.0f virtual seconds", run, out[:len(out)-1], elapsed.Seconds())
		if run == 1 {
			fmt.Printf("  (staging 5MB at ~85 KB/s dominates)")
		} else {
			fmt.Printf("  (staging cache: no re-upload)")
		}
		fmt.Println()
	}

	fmt.Println("\nappliance outbound traffic per 3s bucket (the Fig. 7 plateau):")
	fmt.Print(metrics.Chart("Network out", "B", rec.Series(),
		func(s metrics.Sample) float64 { return s.NetOutBytes }))
}
